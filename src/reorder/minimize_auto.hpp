#pragma once
// Graceful degradation for exact minimization: run the Friedman–Supowit
// DP under a budget, and when it trips, salvage the partial DP into a
// heuristic search instead of failing.
//
// The ladder:
//   1. Exact FS* DP, layer by layer, each layer pre-admitted against the
//      budget (work, nodes, bytes — see core::fs_star).
//   2. On a trip: pick the cheapest subset of the deepest completed
//      layer, reconstruct its within-block order from the DP
//      back-pointers, and complete it upward greedily (smallest
//      compaction width first).  This alone yields a valid ordering and
//      an exact size for it, plus a true lower bound: every complete
//      order's bottom-k block costs at least min_K MINCOST_K over the
//      deepest completed layer k.
//   3. Rudell sifting seeded with that order, under the remaining
//      budget.
//   4. Random restarts under whatever budget still remains.
//
// Every stage makes its budget decisions at serial program points, so a
// run with a fixed work-unit budget returns the same order, size, and
// outcome for every thread count; only wall-clock/cancel trips vary.

#include <cstdint>
#include <string>
#include <vector>

#include "core/minimize.hpp"
#include "parallel/exec_policy.hpp"
#include "parallel/task_graph.hpp"
#include "reorder/eval_context.hpp"
#include "reorder/oracle.hpp"
#include "rt/budget.hpp"
#include "tt/truth_table.hpp"

namespace ovo::reorder {

struct AutoMinimizeOptions {
  core::DiagramKind kind = core::DiagramKind::kBdd;
  int sift_max_passes = 8;
  /// Random orders drawn for the final stage (the budget truncates the
  /// evaluated prefix deterministically).
  int restarts = 64;
  std::uint64_t restart_seed = 0x5eed5eed5eedull;
  /// Heuristic that seeds the DP's pruning incumbent when exec.prune ==
  /// PruneMode::kBounds (see seed_prune_bound); ignored in dense mode.
  std::string prune_seed = "sift";
  par::ExecPolicy exec{};
  /// Checkpoint/resume for the exact DP stage (core::fs_star).  With a
  /// resume snapshot the ladder skips its seeding stage — the snapshot
  /// carries the seed order and the effective pruning incumbent — so the
  /// resumed DP replays the uninterrupted run bit for bit.  Written
  /// snapshots record the seed provenance for exactly that hand-off.
  core::FsCheckpointOptions ckpt{};
};

struct AutoMinimizeResult {
  /// Always a valid permutation, even on the tightest budgets.
  std::vector<int> order_root_first;
  /// Exact internal node count of the diagram under that order.
  std::uint64_t internal_nodes = 0;
  /// True iff the exact DP completed (the order is proven optimal).
  bool optimal = false;
  /// DP layers fully built before the budget intervened (== n if
  /// optimal).
  int dp_layers_completed = 0;
  /// Proven lower bound on the optimal size, from the deepest completed
  /// DP layer (equals internal_nodes when optimal).
  std::uint64_t lower_bound = 0;
  /// DP + salvage compaction work (stages 1–2).
  core::OpCounter ops;
  /// Chain-evaluation oracle stats for the heuristic stages (3–4): the
  /// sifting and restart stages share one memoized oracle, so an order
  /// both stages visit is evaluated once (`evals` < `queries`).
  OracleStats oracle;
  /// ovo::par scheduler counters attributed to this run (delta of the
  /// process-wide totals around the ladder): tasks/chunks executed,
  /// ready-queue high-water mark, and the barrier-wait vs.
  /// pipelined-overlap split.  All zero for a serial policy.
  par::SchedStats sched;
};

/// Minimizes under `budget` with graceful degradation (see file
/// comment).  The Result's outcome is kComplete iff the exact DP
/// finished; otherwise it reports why it could not (the limit that bound
/// first, or the hard stop), while `value` still carries the best order
/// found by the fallback stages.
rt::Result<AutoMinimizeResult> minimize_auto(
    const tt::TruthTable& f, const rt::Budget& budget,
    const AutoMinimizeOptions& options = {});

/// Same ladder against a caller-owned governor, so minimize_auto can run
/// under an already-ticking budget shared with surrounding work.
rt::Result<AutoMinimizeResult> minimize_auto(
    const tt::TruthTable& f, rt::Governor& gov,
    const AutoMinimizeOptions& options = {});

/// A heuristic order and its exact size, used to seed the bound-pruned
/// DP's incumbent.  The size is the cost of a real complete order, so it
/// is always an admissible (>= optimum) upper bound.
struct PruneSeedResult {
  std::vector<int> order_root_first;  ///< empty for seed "none"
  std::uint64_t upper_bound = 0;      ///< 0 for "none" (DP self-seeds)
};

/// Runs the cheap strategy named `seed` through `oracle` and returns the
/// best order it found plus its exact size.  Recognized names: "sift"
/// (default everywhere), "window", "restarts", "anneal", and "none"
/// (skip seeding; the DP self-seeds from one ascending chain).  The
/// evaluations go through the shared memoized oracle, so a later
/// heuristic stage revisiting an order pays a lookup, not a chain.
PruneSeedResult seed_prune_bound(CostOracle& oracle, const std::string& seed,
                                 int max_passes, int restarts,
                                 std::uint64_t rng_seed,
                                 const EvalContext& ctx);

}  // namespace ovo::reorder
