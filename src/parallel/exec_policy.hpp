#pragma once
// Execution policy threaded through the public entry points that can fan
// work out over the ovo::par thread pool (fs_minimize, fs_star, OptOBDD,
// the reorder baselines, the statevector sweeps).  The default policy is
// strictly serial: a caller that never asks for threads runs exactly the
// code path the library shipped with before parallelism existed, and the
// process never spawns a worker thread.

#include <cstdint>

namespace ovo::par {

/// The thread count auto-detection resolves to: the OVO_THREADS
/// environment variable if set to a positive integer, otherwise
/// std::thread::hardware_concurrency() (minimum 1).  Cached after the
/// first call.
int default_threads();

/// Bound pruning in the FS* DP.  kOff keeps the dense engines exactly as
/// they shipped (the A/B reference); kBounds seeds an upper bound, skips
/// every DP state whose admissible lower bound exceeds it, and stores
/// layers sparsely (surviving states only).  Pruned runs return the same
/// optimal order, size, and tie-breaks as dense runs — see fs_star.hpp.
enum class PruneMode : std::uint8_t { kOff = 0, kBounds = 1 };

struct ExecPolicy {
  /// Number of cooperating threads (including the calling thread).
  /// 1 (the default) selects the serial path, which is bit-identical to
  /// the pre-parallel implementation; 0 auto-detects via
  /// default_threads().
  int num_threads = 1;

  /// Indices per work chunk handed to one thread at a time; 0 lets each
  /// call site pick its own default (1 for heavyweight per-index work
  /// like DP subsets, a few thousand for amplitude sweeps).  Reductions
  /// fold chunk partials in chunk order, so floating-point reduction
  /// results depend on the grain but not on the thread count.
  std::uint64_t grain = 0;

  /// Cross-layer pipelining in the FS* DP (and any future task-graph
  /// client): when true and threads > 1, layer k+1 subsets whose
  /// predecessors have all compacted may start before layer k finishes
  /// draining.  The publish protocol (pre-assigned colex-rank slots)
  /// keeps results bit-identical either way; set false to force the
  /// PR 2 per-layer-barrier engine, e.g. for A/B bench comparisons.
  bool pipeline = true;

  /// Bound pruning for the FS* DP (see PruneMode).  Off by default so
  /// every existing caller keeps the dense engines bit for bit.
  PruneMode prune = PruneMode::kOff;

  int resolved_threads() const {
    return num_threads == 0 ? default_threads() : num_threads;
  }
  bool serial() const { return resolved_threads() <= 1; }

  static ExecPolicy auto_detect() { return ExecPolicy{0, 0}; }
};

}  // namespace ovo::par
