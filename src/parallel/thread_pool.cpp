#include "parallel/thread_pool.hpp"

#include <cstdlib>
#include <string>

namespace ovo::par {

int default_threads() {
  static const int cached = [] {
    if (const char* env = std::getenv("OVO_THREADS")) {
      char* tail = nullptr;
      const long v = std::strtol(env, &tail, 10);
      if (tail != env && *tail == '\0' && v >= 1)
        return ThreadPool::clamp_threads(static_cast<int>(
            v > ThreadPool::kMaxThreads ? ThreadPool::kMaxThreads : v));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1
                   : ThreadPool::clamp_threads(static_cast<int>(hw));
  }();
  return cached;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::workers() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(workers_.size());
}

bool& ThreadPool::in_worker() {
  thread_local bool flag = false;
  return flag;
}

void ThreadPool::ensure_workers(int count) {
  std::lock_guard<std::mutex> lk(mu_);
  while (static_cast<int>(workers_.size()) < count &&
         static_cast<int>(workers_.size()) < kMaxThreads - 1)
    workers_.emplace_back([this] { worker_main(); });
}

void ThreadPool::worker_main() {
  in_worker() = true;
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = queue_.front();
      queue_.pop_front();
    }
    drain_chunks(*job.region, job.slot);
    // Detach from the region while holding its lock: once pending hits
    // zero the caller may destroy the region, so do not touch it after
    // the unlock.
    {
      std::lock_guard<std::mutex> lk(job.region->mu);
      if (--job.region->pending == 0) job.region->done_cv.notify_all();
    }
  }
}

void ThreadPool::drain_chunks(Region& region, int slot) {
  for (;;) {
    if (region.stop != nullptr &&
        region.stop->load(std::memory_order_relaxed))
      return;  // cooperative drain: stop pulling, detach normally
    const std::uint64_t lo =
        region.next.fetch_add(region.grain, std::memory_order_relaxed);
    if (lo >= region.end) return;
    const std::uint64_t hi =
        lo + region.grain < region.end ? lo + region.grain : region.end;
    try {
      region.run_chunk(lo, hi, slot);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(region.mu);
        if (!region.error) region.error = std::current_exception();
      }
      // Park the cursor past the end so all participants wind down.
      region.next.store(region.end, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::run_region(Region& region, int extra) {
  if (extra > kMaxThreads - 1) extra = kMaxThreads - 1;
  ensure_workers(extra);
  {
    std::lock_guard<std::mutex> lk(mu_);
    const int available = static_cast<int>(workers_.size());
    if (extra > available) extra = available;
    region.pending = extra;
    for (int s = 1; s <= extra; ++s) queue_.push_back(Job{&region, s});
  }
  cv_.notify_all();
  drain_chunks(region, 0);
  {
    std::unique_lock<std::mutex> lk(region.mu);
    region.done_cv.wait(lk, [&] { return region.pending == 0; });
  }
  if (region.error) std::rethrow_exception(region.error);
}

}  // namespace ovo::par
