#include "parallel/thread_pool.hpp"

#include <cstdlib>
#include <string>

#include "parallel/task_graph.hpp"

namespace ovo::par {

int default_threads() {
  static const int cached = [] {
    if (const char* env = std::getenv("OVO_THREADS")) {
      char* tail = nullptr;
      const long v = std::strtol(env, &tail, 10);
      if (tail != env && *tail == '\0' && v >= 1)
        return ThreadPool::clamp_threads(static_cast<int>(
            v > ThreadPool::kMaxThreads ? ThreadPool::kMaxThreads : v));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1
                   : ThreadPool::clamp_threads(static_cast<int>(hw));
  }();
  return cached;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::workers() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(workers_.size());
}

bool& ThreadPool::in_worker() {
  thread_local bool flag = false;
  return flag;
}

void ThreadPool::ensure_workers(int count) {
  std::lock_guard<std::mutex> lk(mu_);
  while (static_cast<int>(workers_.size()) < count &&
         static_cast<int>(workers_.size()) < kMaxThreads - 1)
    workers_.emplace_back([this] { worker_main(); });
}

void ThreadPool::worker_main() {
  in_worker() = true;
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = queue_.front();
      queue_.pop_front();
    }
    job.region->participate(job.slot);
    // Detach from the region while holding its lock: once pending hits
    // zero the dispatching thread may destroy the region, so do not
    // touch it after the unlock.
    {
      std::lock_guard<std::mutex> lk(job.region->detach_mu_);
      if (--job.region->pending_ == 0) job.region->detach_cv_.notify_all();
    }
  }
}

void ThreadPool::run_region(RegionBase& region, int extra) {
  if (extra < 0) extra = 0;
  if (extra > kMaxThreads - 1) extra = kMaxThreads - 1;
  ensure_workers(extra);
  {
    std::lock_guard<std::mutex> lk(mu_);
    const int available = static_cast<int>(workers_.size());
    if (extra > available) extra = available;
    region.pending_ = extra;
    for (int s = 1; s <= extra; ++s) queue_.push_back(Job{&region, s});
  }
  cv_.notify_all();
  region.participate(0);
  {
    std::unique_lock<std::mutex> lk(region.detach_mu_);
    region.detach_cv_.wait(lk, [&] { return region.pending_ == 0; });
  }
}

void ThreadPool::run_chunked(
    std::uint64_t begin, std::uint64_t end, std::uint64_t grain, int threads,
    const std::atomic<bool>* stop,
    std::function<void(std::uint64_t, std::uint64_t, int)> chunk_body) {
  TaskGraph graph;
  graph.add_chunked(begin, end, grain, std::move(chunk_body));
  graph.run(threads, stop);
}

}  // namespace ovo::par
