#pragma once
// Work-chunked thread pool (ovo::par) — the shared parallel-execution
// substrate under the Friedman–Supowit DP, the statevector sweeps, and
// the per-candidate order evaluations.  No external dependencies.
//
// Model: a parallel region splits an index range [begin, end) into
// chunks of `grain` consecutive indices; participating threads pull
// chunks off a shared atomic cursor until the range is exhausted.  The
// calling thread always participates (as slot 0), so `threads = t`
// means the caller plus up to t - 1 pool workers.
//
// Determinism contract:
//  * parallel_for(threads <= 1) runs a plain serial loop on the calling
//    thread — no pool machinery, bit-identical to pre-parallel code.
//  * Which thread runs which chunk is scheduling-dependent; callers make
//    results deterministic by giving every index its own write slot
//    (e.g. the DP writes subset results at the subset's colex rank).
//  * Per-thread scratch is indexed by the `slot` argument passed to the
//    body (0 = caller, 1..t-1 = workers).  Slot-indexed accumulators
//    must be merged with commutative operations (sums, maxes) to stay
//    deterministic, because slot-to-chunk assignment is not.
//  * parallel_reduce computes one partial per *chunk* and folds the
//    partials in chunk order, so its result depends on the grain but not
//    on the thread count — except threads <= 1, which maps the whole
//    range as a single chunk (bit-identical to a pre-parallel serial
//    accumulation loop).
//
// Nested regions: a parallel_for issued from inside a pool worker runs
// serially on that worker (slot 0 of the inner region).  This keeps
// composition deadlock-free; only the outermost region fans out.
//
// Cooperative cancellation: the overloads taking a `stop` flag check it
// once per chunk — before pulling the next chunk off the cursor — and
// drain cooperatively (stop pulling, detach normally) when it flips.
// Already-started chunks run to completion, so a stopped region never
// leaves a chunk half-executed; callers discard the region's output when
// the flag is set.  The flag is typically rt::Governor::stop_flag().
// Passing stop == nullptr compiles to the ungoverned code path.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "parallel/exec_policy.hpp"

namespace ovo::par {

class ThreadPool {
 public:
  /// Hard ceiling on cooperating threads per region (and on worker slot
  /// ids).  Requests beyond it are clamped.
  static constexpr int kMaxThreads = 64;

  ThreadPool() = default;
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool shared by all call sites.  Lazily grows its
  /// worker set to the largest thread count ever requested (minus the
  /// caller), capped at kMaxThreads - 1; a process that only ever runs
  /// serial policies never spawns a thread.
  static ThreadPool& shared();

  /// Worker threads currently alive (excludes callers).
  int workers() const;

  /// Clamps a requested thread count into [1, kMaxThreads].
  static int clamp_threads(int threads) {
    return threads < 1 ? 1 : (threads > kMaxThreads ? kMaxThreads : threads);
  }

  /// Runs fn(i, slot) for every i in [begin, end), chunked by `grain`
  /// over at most `threads` threads (caller included).  slot identifies
  /// the executing thread within this region, in [0, threads).
  template <typename Fn>
  void parallel_for(std::uint64_t begin, std::uint64_t end,
                    std::uint64_t grain, int threads, Fn&& fn) {
    parallel_for(begin, end, grain, threads,
                 static_cast<const std::atomic<bool>*>(nullptr),
                 std::forward<Fn>(fn));
  }

  /// As above, plus a cooperative stop flag checked at chunk boundaries
  /// (see header comment).  stop may be nullptr.
  template <typename Fn>
  void parallel_for(std::uint64_t begin, std::uint64_t end,
                    std::uint64_t grain, int threads,
                    const std::atomic<bool>* stop, Fn&& fn) {
    if (begin >= end) return;
    if (grain == 0) grain = 1;
    threads = clamp_threads(threads);
    const std::uint64_t chunks = (end - begin + grain - 1) / grain;
    if (threads <= 1 || chunks <= 1 || in_worker()) {
      if (stop == nullptr) {
        for (std::uint64_t i = begin; i < end; ++i) fn(i, 0);
        return;
      }
      // Serial path honours the same chunk-boundary stop granularity as
      // the parallel one, so governed runs degrade identically.
      for (std::uint64_t lo = begin; lo < end; lo += grain) {
        if (stop->load(std::memory_order_relaxed)) return;
        const std::uint64_t hi = lo + grain < end ? lo + grain : end;
        for (std::uint64_t i = lo; i < hi; ++i) fn(i, 0);
      }
      return;
    }
    Region region;
    region.next.store(begin, std::memory_order_relaxed);
    region.end = end;
    region.grain = grain;
    region.stop = stop;
    auto body = [&fn](std::uint64_t lo, std::uint64_t hi, int slot) {
      for (std::uint64_t i = lo; i < hi; ++i) fn(i, slot);
    };
    region.run_chunk = std::ref(body);
    const std::uint64_t extra64 =
        std::min<std::uint64_t>(static_cast<std::uint64_t>(threads - 1),
                                chunks - 1);
    run_region(region, static_cast<int>(extra64));
  }

  /// Maps chunks [lo, hi) of [begin, end) with `map_chunk` and folds the
  /// per-chunk partials with `combine` in ascending chunk order, seeded
  /// by `init`.  threads <= 1 maps the whole range as one chunk.
  template <typename T, typename MapChunk, typename Combine>
  T parallel_reduce(std::uint64_t begin, std::uint64_t end,
                    std::uint64_t grain, int threads, T init,
                    MapChunk&& map_chunk, Combine&& combine) {
    return parallel_reduce(begin, end, grain, threads,
                           static_cast<const std::atomic<bool>*>(nullptr),
                           std::move(init), std::forward<MapChunk>(map_chunk),
                           std::forward<Combine>(combine));
  }

  /// As above with a cooperative stop flag.  When the flag trips
  /// mid-region the unmapped chunks contribute default-constructed
  /// partials, so the caller must treat the result as garbage whenever
  /// the flag is set on return.
  template <typename T, typename MapChunk, typename Combine>
  T parallel_reduce(std::uint64_t begin, std::uint64_t end,
                    std::uint64_t grain, int threads,
                    const std::atomic<bool>* stop, T init,
                    MapChunk&& map_chunk, Combine&& combine) {
    if (begin >= end) return init;
    if (grain == 0) grain = 1;
    threads = clamp_threads(threads);
    const std::uint64_t chunks = (end - begin + grain - 1) / grain;
    if (threads <= 1 || chunks <= 1 || in_worker()) {
      if (stop != nullptr && stop->load(std::memory_order_relaxed))
        return init;
      return combine(std::move(init), map_chunk(begin, end));
    }
    std::vector<T> partials(chunks);
    parallel_for(0, chunks, 1, threads, stop, [&](std::uint64_t c, int) {
      const std::uint64_t lo = begin + c * grain;
      const std::uint64_t hi = lo + grain < end ? lo + grain : end;
      partials[c] = map_chunk(lo, hi);
    });
    T acc = std::move(init);
    for (T& p : partials) acc = combine(std::move(acc), std::move(p));
    return acc;
  }

 private:
  /// Shared state of one in-flight parallel region; lives on the
  /// caller's stack for the duration of the region.
  struct Region {
    std::atomic<std::uint64_t> next{0};  ///< chunk cursor
    std::uint64_t end = 0;
    std::uint64_t grain = 1;
    /// Optional cooperative stop flag (not owned); checked before every
    /// chunk pull.
    const std::atomic<bool>* stop = nullptr;
    /// Type-erased chunk body: (chunk_begin, chunk_end, slot).
    std::function<void(std::uint64_t, std::uint64_t, int)> run_chunk;
    std::mutex mu;
    std::condition_variable done_cv;
    int pending = 0;  ///< workers still attached to this region
    std::exception_ptr error;
  };

  struct Job {
    Region* region = nullptr;
    int slot = 0;
  };

  /// True on threads owned by this pool (blocks nested fan-out).
  static bool& in_worker();

  void ensure_workers(int count);
  void worker_main();
  /// Enqueues `extra` worker jobs, participates as slot 0, waits for the
  /// workers to detach, rethrows the first captured exception.
  void run_region(Region& region, int extra);
  /// The chunk-pulling loop every participant runs.
  static void drain_chunks(Region& region, int slot);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace ovo::par
