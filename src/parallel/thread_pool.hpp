#pragma once
// Worker-pool substrate of the ovo::par execution layer.  Since the
// task-graph refactor this header owns only the *threads*: a lazily
// grown set of pool workers plus the region-dispatch protocol.  All
// scheduling lives in ovo::par::TaskGraph (task_graph.hpp) — nodes with
// atomic dependency counters, work-chunked bodies, per-worker ready
// deques, and a deterministic publish protocol.  parallel_for and
// parallel_reduce below are thin wrappers that build a one-node graph.
//
// Model: a parallel region splits an index range [begin, end) into
// chunks of `grain` consecutive indices; participating threads pull
// chunks until the range is exhausted.  The calling thread always
// participates (as slot 0), so `threads = t` means the caller plus up to
// t - 1 pool workers.
//
// Determinism contract:
//  * parallel_for(threads <= 1, stop == nullptr) runs a plain serial
//    loop on the calling thread — no pool machinery, bit-identical to
//    pre-parallel code.  With a stop flag, the serial path polls it at
//    the same per-chunk granularity as pooled execution, so budgets
//    interrupt 1-thread runs no later than 4-thread runs.
//  * Which thread runs which chunk is scheduling-dependent; callers make
//    results deterministic by giving every index its own write slot
//    (e.g. the DP writes subset results at the subset's colex rank).
//  * Per-thread scratch is indexed by the `slot` argument passed to the
//    body (0 = caller, 1..t-1 = workers).  Slot-indexed accumulators
//    must be merged with commutative operations (sums, maxes) to stay
//    deterministic, because slot-to-chunk assignment is not.
//  * parallel_reduce computes one partial per *chunk* and folds the
//    partials in chunk order, so its result depends on the grain but not
//    on the thread count — except threads <= 1 without a stop flag,
//    which maps the whole range as a single chunk (bit-identical to a
//    pre-parallel serial accumulation loop).  A *governed* serial reduce
//    (stop != nullptr) folds chunk by chunk like the pooled path — same
//    fold order, same cancellation granularity at every thread count.
//
// Nested regions: a region issued from inside ANY active region — a
// pool worker servicing one, or a caller thread participating in a
// graph run — executes serially on that thread (slot 0 of the inner
// region).  Graph participants park waiting for future ready nodes
// instead of returning when idle, so handing a nested region to the
// pool could deadlock against the outer region's sleepers; only the
// outermost region fans out.
//
// Cooperative cancellation: the overloads taking a `stop` flag check it
// once per chunk — before pulling the next chunk — and drain
// cooperatively when it flips.  Already-started chunks run to
// completion, so a stopped region never leaves a chunk half-executed;
// callers discard the region's output when the flag is set.  The flag is
// typically rt::Governor::stop_flag().  Passing stop == nullptr compiles
// to the ungoverned code path.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "parallel/exec_policy.hpp"

namespace ovo::par {

class ThreadPool {
 public:
  /// Hard ceiling on cooperating threads per region (and on worker slot
  /// ids).  Requests beyond it are clamped.
  static constexpr int kMaxThreads = 64;

  ThreadPool() = default;
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool shared by all call sites.  Lazily grows its
  /// worker set to the largest thread count ever requested (minus the
  /// caller), capped at kMaxThreads - 1; a process that only ever runs
  /// serial policies never spawns a thread.
  static ThreadPool& shared();

  /// Worker threads currently alive (excludes callers).
  int workers() const;

  /// Clamps a requested thread count into [1, kMaxThreads].
  static int clamp_threads(int threads) {
    return threads < 1 ? 1 : (threads > kMaxThreads ? kMaxThreads : threads);
  }

  /// True on threads owned by this pool.  Regions started from a pool
  /// worker must execute inline (nested fan-out is forbidden by design).
  static bool in_pool_worker() { return in_worker(); }

  /// One in-flight parallel region.  TaskGraph::run implements this to
  /// dispatch a graph over the pool; participate(slot) is the scheduling
  /// loop each cooperating thread runs (slot 0 = caller) and must not
  /// throw — regions capture task exceptions and rethrow after the
  /// region drains.  The detach fields let the pool hand workers back:
  /// once pending_ hits zero the dispatching thread may destroy the
  /// region, so workers must not touch it after detaching.
  class RegionBase {
   public:
    virtual ~RegionBase() = default;

   protected:
    friend class ThreadPool;
    virtual void participate(int slot) = 0;

   private:
    std::mutex detach_mu_;
    std::condition_variable detach_cv_;
    int pending_ = 0;
  };

  /// Enqueues `extra` worker jobs for `region` (slots 1..extra),
  /// participates as slot 0, and waits for the workers to detach.
  void run_region(RegionBase& region, int extra);

  /// Runs fn(i, slot) for every i in [begin, end), chunked by `grain`
  /// over at most `threads` threads (caller included).  slot identifies
  /// the executing thread within this region, in [0, threads).
  template <typename Fn>
  void parallel_for(std::uint64_t begin, std::uint64_t end,
                    std::uint64_t grain, int threads, Fn&& fn) {
    parallel_for(begin, end, grain, threads,
                 static_cast<const std::atomic<bool>*>(nullptr),
                 std::forward<Fn>(fn));
  }

  /// As above, plus a cooperative stop flag checked at chunk boundaries
  /// (see header comment).  stop may be nullptr.
  template <typename Fn>
  void parallel_for(std::uint64_t begin, std::uint64_t end,
                    std::uint64_t grain, int threads,
                    const std::atomic<bool>* stop, Fn&& fn) {
    if (begin >= end) return;
    if (grain == 0) grain = 1;
    threads = clamp_threads(threads);
    const std::uint64_t chunks = (end - begin + grain - 1) / grain;
    if (threads <= 1 || chunks <= 1 || in_worker()) {
      if (stop == nullptr) {
        for (std::uint64_t i = begin; i < end; ++i) fn(i, 0);
        return;
      }
      // Serial path honours the same chunk-boundary stop granularity as
      // the parallel one, so governed runs degrade identically.
      for (std::uint64_t lo = begin; lo < end; lo += grain) {
        if (stop->load(std::memory_order_relaxed)) return;
        const std::uint64_t hi = lo + grain < end ? lo + grain : end;
        for (std::uint64_t i = lo; i < hi; ++i) fn(i, 0);
      }
      return;
    }
    run_chunked(begin, end, grain, threads, stop,
                [&fn](std::uint64_t lo, std::uint64_t hi, int slot) {
                  for (std::uint64_t i = lo; i < hi; ++i) fn(i, slot);
                });
  }

  /// Maps chunks [lo, hi) of [begin, end) with `map_chunk` and folds the
  /// per-chunk partials with `combine` in ascending chunk order, seeded
  /// by `init`.  threads <= 1 maps the whole range as one chunk.
  template <typename T, typename MapChunk, typename Combine>
  T parallel_reduce(std::uint64_t begin, std::uint64_t end,
                    std::uint64_t grain, int threads, T init,
                    MapChunk&& map_chunk, Combine&& combine) {
    return parallel_reduce(begin, end, grain, threads,
                           static_cast<const std::atomic<bool>*>(nullptr),
                           std::move(init), std::forward<MapChunk>(map_chunk),
                           std::forward<Combine>(combine));
  }

  /// As above with a cooperative stop flag.  When the flag trips
  /// mid-region the unmapped chunks contribute default-constructed
  /// partials (parallel) or are simply missing from the fold (serial),
  /// so the caller must treat the result as garbage whenever the flag is
  /// set on return.  The governed serial path maps and folds chunk by
  /// chunk — the pooled fold order — polling the flag between chunks.
  template <typename T, typename MapChunk, typename Combine>
  T parallel_reduce(std::uint64_t begin, std::uint64_t end,
                    std::uint64_t grain, int threads,
                    const std::atomic<bool>* stop, T init,
                    MapChunk&& map_chunk, Combine&& combine) {
    if (begin >= end) return init;
    if (grain == 0) grain = 1;
    threads = clamp_threads(threads);
    const std::uint64_t chunks = (end - begin + grain - 1) / grain;
    if (threads <= 1 || chunks <= 1 || in_worker()) {
      if (stop == nullptr)
        return combine(std::move(init), map_chunk(begin, end));
      if (chunks <= 1) {
        if (stop->load(std::memory_order_relaxed)) return init;
        return combine(std::move(init), map_chunk(begin, end));
      }
      T acc = std::move(init);
      for (std::uint64_t lo = begin; lo < end; lo += grain) {
        if (stop->load(std::memory_order_relaxed)) return acc;
        const std::uint64_t hi = lo + grain < end ? lo + grain : end;
        acc = combine(std::move(acc), map_chunk(lo, hi));
      }
      return acc;
    }
    std::vector<T> partials(chunks);
    parallel_for(0, chunks, 1, threads, stop, [&](std::uint64_t c, int) {
      const std::uint64_t lo = begin + c * grain;
      const std::uint64_t hi = lo + grain < end ? lo + grain : end;
      partials[c] = map_chunk(lo, hi);
    });
    T acc = std::move(init);
    for (T& p : partials) acc = combine(std::move(acc), std::move(p));
    return acc;
  }

 private:
  struct Job {
    RegionBase* region = nullptr;
    int slot = 0;
  };

  /// True on threads owned by this pool (blocks nested fan-out).
  static bool& in_worker();

  /// Builds a one-node TaskGraph over [begin, end) and runs it; defined
  /// in thread_pool.cpp so this header need not include task_graph.hpp.
  void run_chunked(
      std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
      int threads, const std::atomic<bool>* stop,
      std::function<void(std::uint64_t, std::uint64_t, int)> chunk_body);

  void ensure_workers(int count);
  void worker_main();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace ovo::par
