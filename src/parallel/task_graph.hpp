#pragma once
// Task-graph execution layer (ovo::par v2) — the dependency-counting
// scheduler every parallel region in the repo now runs on.
//
// Model: a TaskGraph is a DAG of *nodes*.  Each node owns a work-chunked
// index range [begin, end) with a chunk body (a single-shot task is the
// degenerate range [0, 1)), an atomic count of unmet predecessors, and a
// successor list.  run() seeds the nodes whose dependency count is zero
// into per-worker ready deques; a node with C chunks is published as
// min(C, threads) *tickets*, so several workers can cooperate on one
// large range exactly like the old flat parallel region.  When the last
// chunk of a node retires, the finisher decrements every successor's
// counter and pushes the ones that hit zero onto its own deque (affinity
// first, round-robin for extra tickets); idle workers steal from the
// front of other deques.  parallel_for / parallel_reduce are thin
// wrappers: a one-node graph.
//
// Determinism contract (unchanged from the flat pool, now stated at the
// graph level): which worker runs which chunk — and in what order
// independent nodes execute — is scheduling-dependent.  Callers make
// results deterministic with the *publish protocol*: every task writes
// its results into a pre-assigned slot (the FS* DP writes each subset's
// table at the subset's colex rank), so completion order never affects
// output, and any consumer that truly needs *all* predecessors hangs off
// a seq_epoch() fence instead of an implicit barrier.  Fences are chained
// (fence k+1 depends on fence k), so fence bodies are serialized and may
// touch shared state without locks.
//
// Cooperative cancellation drains the DAG, not a loop: the stop flag is
// checked before every chunk pull; the first participant that observes
// it marks the region stopped and wakes the others, in-flight chunks run
// to completion, unstarted nodes are abandoned (their dependency
// counters simply never reach zero), and run() returns with the graph
// partially executed.  Completed fences have fully published their
// epoch, so the caller keeps everything up to the last completed fence
// and discards the rest — the same "partial layers are discarded"
// contract rt::Governor documents.
//
// Nested graphs: run() issued from inside a pool worker executes the
// whole graph serially inline (slot 0, dependency order, same per-chunk
// stop polling).  This keeps composition deadlock-free; only the
// outermost region fans out.
//
// A TaskGraph is a single-run object: build (add/add_edge/seq_epoch),
// run once, read last_run() stats, destroy.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"

namespace ovo::par {

class GraphRegion;

/// Scheduler counters for one graph run (and, accumulated, for the whole
/// process — see sched_stats()).  All times are steady-clock ns.
struct SchedStats {
  std::uint64_t graphs = 0;         ///< graph runs
  std::uint64_t tasks = 0;          ///< nodes run to completion
  std::uint64_t chunks = 0;         ///< chunks executed
  std::uint64_t ready_hwm = 0;      ///< max ready tickets queued at once
  /// Nodes that became ready — and started executing — before the fence
  /// of their preceding epoch had completed: the cross-layer pipelining
  /// the per-layer barrier used to forbid.
  std::uint64_t overlap_tasks = 0;
  std::uint64_t overlap_ns = 0;  ///< chunk time spent in such nodes
  /// Layer-boundary stall: in-region pipeline bubbles (the gap from a
  /// participant's first empty pop to the push that fed it — OS wake
  /// latency excluded) plus engine-charged barrier seams (see
  /// charge_barrier_wait).
  std::uint64_t barrier_wait_ns = 0;
  /// Chunks the bound-pruned FS* DP retired without compacting a single
  /// state (every index in the chunk was dead or pruned) — the residual
  /// scheduling overhead sparse chunk ranges leave behind.  Engine-
  /// charged (see charge_pruned_chunks); zero when pruning is off.
  std::uint64_t pruned_chunks = 0;

  /// Accumulates this struct into `l` under the sched.* metric IDs
  /// (ready_hwm is a kMax metric, everything else kSum).
  void to_ledger(obs::Ledger& l) const {
    l.record(obs::Metric::kSchedGraphs, graphs);
    l.record(obs::Metric::kSchedTasks, tasks);
    l.record(obs::Metric::kSchedChunks, chunks);
    l.record(obs::Metric::kSchedReadyHwm, ready_hwm);
    l.record(obs::Metric::kSchedOverlapTasks, overlap_tasks);
    l.record(obs::Metric::kSchedOverlapNs, overlap_ns);
    l.record(obs::Metric::kSchedBarrierWaitNs, barrier_wait_ns);
    l.record(obs::Metric::kSchedPrunedChunks, pruned_chunks);
  }
  void from_ledger(const obs::Ledger& l) {
    graphs = l.get(obs::Metric::kSchedGraphs);
    tasks = l.get(obs::Metric::kSchedTasks);
    chunks = l.get(obs::Metric::kSchedChunks);
    ready_hwm = l.get(obs::Metric::kSchedReadyHwm);
    overlap_tasks = l.get(obs::Metric::kSchedOverlapTasks);
    overlap_ns = l.get(obs::Metric::kSchedOverlapNs);
    barrier_wait_ns = l.get(obs::Metric::kSchedBarrierWaitNs);
    pruned_chunks = l.get(obs::Metric::kSchedPrunedChunks);
  }

  /// Shard merge under the registry's policies (sums add, hwm maxes).
  SchedStats& operator+=(const SchedStats& o) {
    obs::Ledger mine, theirs;
    to_ledger(mine);
    o.to_ledger(theirs);
    from_ledger(mine.merge(theirs));
    return *this;
  }
  /// Delta between two snapshots of the process-wide totals (hwm is a
  /// max, so the delta keeps the later snapshot's value).
  SchedStats operator-(const SchedStats& o) const {
    SchedStats d = *this;
    d.graphs -= o.graphs;
    d.tasks -= o.tasks;
    d.chunks -= o.chunks;
    d.overlap_tasks -= o.overlap_tasks;
    d.overlap_ns -= o.overlap_ns;
    d.barrier_wait_ns -= o.barrier_wait_ns;
    d.pruned_chunks -= o.pruned_chunks;
    return d;
  }
};

/// Snapshot of the process-wide scheduler totals (monotone; benches diff
/// two snapshots around a run they want to attribute).
SchedStats sched_stats();

/// Adds `ns` to the process-wide barrier_wait_ns total.  Engines call
/// this to attribute *structural* idleness the scheduler cannot observe:
/// a serial layer-boundary seam between parallel regions (a publish
/// epilogue, a final extraction) leaves threads - 1 participants parked
/// in the pool, so the engine charges (threads - 1) x the seam's
/// duration.  Setup work every engine pays identically before fan-out
/// (admission, enumeration, allocation, graph build) is NOT charged —
/// it is overhead visible in wall clock, not barrier stall.  In-region
/// bubbles (waiting with no ready work) are counted automatically;
/// final join waits are not (identical teardown cost in every engine).
void charge_barrier_wait(std::uint64_t ns);

/// Adds `n` to the process-wide pruned_chunks total.  The bound-pruned
/// FS* engines call this from their (serialized) layer fences after
/// tallying which chunk ranges held no surviving work.
void charge_pruned_chunks(std::uint64_t n);

class TaskGraph {
 public:
  using TaskId = std::uint32_t;

  TaskGraph() = default;
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Adds a single-shot task; body(slot) runs once.
  TaskId add(std::function<void(int)> body);

  /// Adds a work-chunked range node: chunk_body(lo, hi, slot) is called
  /// for consecutive chunks of `grain` indices covering [begin, end).
  /// Up to min(chunks, threads) workers cooperate on one node.
  TaskId add_chunked(std::uint64_t begin, std::uint64_t end,
                     std::uint64_t grain,
                     std::function<void(std::uint64_t, std::uint64_t, int)>
                         chunk_body);

  /// Convenience: per-index body fn(i, slot) over [begin, end).
  template <typename Fn>
  TaskId add_range(std::uint64_t begin, std::uint64_t end,
                   std::uint64_t grain, Fn&& fn) {
    return add_chunked(
        begin, end, grain,
        [f = std::forward<Fn>(fn)](std::uint64_t lo, std::uint64_t hi,
                                   int slot) mutable {
          for (std::uint64_t i = lo; i < hi; ++i) f(i, slot);
        });
  }

  /// Declares that `succ` must not start before `pred` completes.
  /// Duplicate edges are the caller's to avoid (each one counts).
  void add_edge(TaskId pred, TaskId succ);

  /// Sequential-epoch fence: a task that depends on every task added
  /// since the previous fence, and on the previous fence itself.  This
  /// is the *only* barrier-like construct: use it where a consumer truly
  /// needs all predecessors (e.g. publishing a completed DP layer in
  /// rank order).  Fence bodies are serialized by the fence chain, and
  /// tasks added *after* a fence do NOT depend on it — they pipeline
  /// past it on their own dependency edges.
  TaskId seq_epoch(std::function<void(int)> body);

  /// Labels a node for the obs trace timeline: `label` names the span
  /// ("fs.group", "oracle.batch", …) and up to two named integer args
  /// annotate it (layer, chunk count, …).  All strings must be literals
  /// (or otherwise outlive the graph); they are stored as pointers.
  /// No-op cost when tracing is disabled; safe to call unconditionally.
  void set_label(TaskId id, const char* label, const char* akey = nullptr,
                 std::uint64_t aval = 0, const char* bkey = nullptr,
                 std::uint64_t bval = 0);

  std::size_t node_count() const { return nodes_.size(); }

  /// Executes the graph over at most `threads` cooperating threads
  /// (caller included, as slot 0).  Checks `stop` (may be null) before
  /// every chunk at every thread count, including the serial fallback.
  /// Rethrows the first exception a task raised after the region drains.
  void run(int threads, const std::atomic<bool>* stop = nullptr);

  /// Counters for the completed run().
  const SchedStats& last_run() const { return last_run_; }

 private:
  friend class GraphRegion;

  struct Node {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    std::uint64_t grain = 1;
    std::uint64_t nchunks = 0;
    std::function<void(std::uint64_t, std::uint64_t, int)> chunk_body;
    std::vector<TaskId> succ;
    std::uint32_t preds = 0;   ///< static predecessor count (build time)
    std::int64_t fence = -1;   ///< fence of the preceding epoch, if any
    bool overlap = false;      ///< readied before that fence completed
    /// Trace annotation (see set_label); literals only, not owned.
    const char* label = "task";
    const char* akey = nullptr;
    std::uint64_t aval = 0;
    const char* bkey = nullptr;
    std::uint64_t bval = 0;
    std::atomic<std::uint64_t> cursor{0};       ///< next chunk start
    std::atomic<std::uint64_t> chunks_left{0};  ///< chunks not yet retired
    std::atomic<std::uint32_t> waiting{0};      ///< unmet predecessors
    std::atomic<bool> done{false};
  };

  void run_serial(const std::atomic<bool>* stop);

  /// True while this thread participates in any GraphRegion (including
  /// the dispatching thread, slot 0).  A nested run() must execute
  /// inline: graph participants wait for future ready nodes instead of
  /// returning when idle, so handing a nested region to the pool could
  /// deadlock against participants parked in the outer region.
  static bool& tl_in_region();

  /// Nodes live in a deque so ids stay stable as the graph grows (Node
  /// holds atomics and is neither movable nor copyable).
  std::deque<Node> nodes_;
  std::vector<TaskId> epoch_tasks_;  ///< tasks added since the last fence
  std::int64_t last_fence_ = -1;
  std::uint64_t total_chunks_ = 0;
  bool ran_ = false;
  SchedStats last_run_;
};

}  // namespace ovo::par
