#include "parallel/task_graph.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "obs/trace.hpp"
#include "rt/fault.hpp"
#include "util/check.hpp"

namespace ovo::par {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The process-wide scheduler totals ARE the obs registry's sched.*
/// slots — there is no second accumulator.  Per-run SchedStats fold in
/// via the ledger path, so the registry's per-metric policy (hwm maxes,
/// the rest sum) is the only merge definition.
void accumulate_global(const SchedStats& s) {
  obs::Ledger l;
  s.to_ledger(l);
  obs::Registry::global().merge(l);
}

}  // namespace

void charge_barrier_wait(std::uint64_t ns) {
  obs::Registry::global().record(obs::Metric::kSchedBarrierWaitNs, ns);
}

void charge_pruned_chunks(std::uint64_t n) {
  obs::Registry::global().record(obs::Metric::kSchedPrunedChunks, n);
}

SchedStats sched_stats() {
  SchedStats s;
  s.from_ledger(obs::Registry::global().snapshot());
  return s;
}

// ---------------------------------------------------------------------------
// Graph construction (single-threaded build phase; no atomics involved).

TaskGraph::TaskId TaskGraph::add(std::function<void(int)> body) {
  return add_chunked(
      0, 1, 1,
      [b = std::move(body)](std::uint64_t, std::uint64_t, int slot) {
        b(slot);
      });
}

TaskGraph::TaskId TaskGraph::add_chunked(
    std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
    std::function<void(std::uint64_t, std::uint64_t, int)> chunk_body) {
  OVO_CHECK_MSG(begin < end, "TaskGraph: empty task range");
  OVO_CHECK_MSG(!ran_, "TaskGraph: add after run");
  if (grain == 0) grain = 1;
  const TaskId id = static_cast<TaskId>(nodes_.size());
  Node& n = nodes_.emplace_back();
  n.begin = begin;
  n.end = end;
  n.grain = grain;
  n.nchunks = (end - begin + grain - 1) / grain;
  n.chunk_body = std::move(chunk_body);
  n.fence = last_fence_;
  total_chunks_ += n.nchunks;
  epoch_tasks_.push_back(id);
  return id;
}

void TaskGraph::add_edge(TaskId pred, TaskId succ) {
  OVO_CHECK_MSG(pred < nodes_.size() && succ < nodes_.size() && pred != succ,
                "TaskGraph: bad edge");
  nodes_[pred].succ.push_back(succ);
  ++nodes_[succ].preds;
}

TaskGraph::TaskId TaskGraph::seq_epoch(std::function<void(int)> body) {
  std::vector<TaskId> epoch = std::move(epoch_tasks_);
  epoch_tasks_.clear();
  const std::int64_t prev = last_fence_;
  const TaskId id = add(std::move(body));
  nodes_[id].label = "fence";
  for (const TaskId t : epoch) add_edge(t, id);
  if (prev >= 0) add_edge(static_cast<TaskId>(prev), id);
  last_fence_ = static_cast<std::int64_t>(id);
  epoch_tasks_.clear();  // the fence itself belongs to no epoch
  return id;
}

void TaskGraph::set_label(TaskId id, const char* label, const char* akey,
                          std::uint64_t aval, const char* bkey,
                          std::uint64_t bval) {
  OVO_CHECK_MSG(id < nodes_.size(), "TaskGraph: set_label on bad id");
  Node& n = nodes_[id];
  n.label = label;
  n.akey = akey;
  n.aval = aval;
  n.bkey = bkey;
  n.bval = bval;
}

// ---------------------------------------------------------------------------
// Parallel execution: one GraphRegion per run, dispatched over the pool.

class GraphRegion final : public ThreadPool::RegionBase {
 public:
  GraphRegion(TaskGraph& g, int threads, const std::atomic<bool>* stop)
      : g_(g), stop_(stop), threads_(threads), deques_(threads) {}

  /// Seeds the zero-dependency nodes round-robin across the deques.
  /// Called before any worker attaches, so no locking is needed.
  void seed() {
    int slot = 0;
    for (TaskId id = 0; id < g_.nodes_.size(); ++id)
      if (g_.nodes_[id].preds == 0) {
        push_tickets_locked(id, slot);
        slot = (slot + 1) % threads_;
      }
  }

  SchedStats stats() const {
    SchedStats s;
    s.graphs = 1;
    s.tasks = tasks_;
    s.chunks = chunks_;
    s.ready_hwm = hwm_;
    s.overlap_tasks = overlap_tasks_;
    s.overlap_ns = overlap_ns_.load(std::memory_order_relaxed);
    s.barrier_wait_ns = wait_ns_;
    return s;
  }

  std::exception_ptr error() const { return error_; }

 private:
  using TaskId = TaskGraph::TaskId;
  using Node = TaskGraph::Node;

  void participate(int slot) override {
    bool& in_region = TaskGraph::tl_in_region();
    const bool was_in_region = in_region;
    in_region = true;
    participate_impl(slot);
    in_region = was_in_region;
  }

  void participate_impl(int slot) {
    for (;;) {
      TaskId id = 0;
      {
        std::unique_lock<std::mutex> lk(mu_);
        // Waits that end in work are genuine pipeline bubbles; credit
        // the gap from the first failed pop to the push that produced
        // the ticket, NOT to the moment this thread got CPU again — OS
        // wake latency is not scheduler stall.  The final wait before
        // done_/stopped_ is join teardown, identical in every engine,
        // and is dropped.
        std::uint64_t wait_start = 0;
        for (;;) {
          if (try_pop_locked(slot, &id)) {
            if (wait_start != 0 && last_push_ns_ > wait_start)
              wait_ns_ += last_push_ns_ - wait_start;
            break;
          }
          if (done_ || stopped_.load(std::memory_order_relaxed)) return;
          if (wait_start == 0) wait_start = now_ns();
          ready_cv_.wait(lk);
        }
      }
      drain(id, slot);
    }
  }

  /// Pops a ticket: own deque from the back (affinity: newest ready work
  /// is cache-warm), other deques from the front (stealing).
  bool try_pop_locked(int slot, TaskId* id) {
    if (!deques_[slot].empty()) {
      *id = deques_[slot].back();
      deques_[slot].pop_back();
      --tickets_;
      return true;
    }
    for (int d = 1; d < threads_; ++d) {
      std::deque<TaskId>& q = deques_[(slot + d) % threads_];
      if (!q.empty()) {
        *id = q.front();
        q.pop_front();
        --tickets_;
        return true;
      }
    }
    return false;
  }

  /// The chunk-pulling loop one ticket buys on node `id`.  One trace
  /// span per ticket: the timeline shows each worker's slice of each
  /// node, which is exactly where cross-layer pipelining is visible.
  void drain(TaskId id, int slot) {
    Node& n = g_.nodes_[id];
    OVO_TRACE_SPAN_ARGS(n.label, "sched", slot, n.akey, n.aval, n.bkey,
                        n.bval);
    for (;;) {
      if (stop_ != nullptr && stop_->load(std::memory_order_relaxed)) {
        halt();
        return;
      }
      if (stopped_.load(std::memory_order_relaxed)) return;
      const std::uint64_t lo =
          n.cursor.fetch_add(n.grain, std::memory_order_relaxed);
      if (lo >= n.end) return;  // exhausted; another ticket finishes it
      const std::uint64_t hi =
          lo + n.grain < n.end ? lo + n.grain : n.end;
      const std::uint64_t t0 = n.overlap ? now_ns() : 0;
      try {
        // Fault site kTaskDispatch: the injected FaultInjected rides the
        // same first-exception-wins drain as a real chunk failure.
        rt::fault_dispatch_hook();
        n.chunk_body(lo, hi, slot);
      } catch (...) {
        fail(std::current_exception());
        return;
      }
      if (n.overlap)
        overlap_ns_.fetch_add(now_ns() - t0, std::memory_order_relaxed);
      chunks_.fetch_add(1, std::memory_order_relaxed);
      // acq_rel chains every chunk's writes into whoever retires the
      // last one, so complete() publishes the whole node downstream.
      if (n.chunks_left.fetch_sub(1, std::memory_order_acq_rel) == 1)
        complete(id, slot);
    }
  }

  /// Last chunk of `id` retired: mark done, ready the successors whose
  /// dependency count hits zero, and wake waiters.  Two threads can be
  /// in here at once (completing different nodes), so the ready list is
  /// a local — the dep-counter decrements are the atomic handoff.
  void complete(TaskId id, int slot) {
    Node& n = g_.nodes_[id];
    n.done.store(true, std::memory_order_release);
    tasks_.fetch_add(1, std::memory_order_relaxed);
    std::vector<TaskId> ready_now;
    for (const TaskId s : n.succ)
      if (g_.nodes_[s].waiting.fetch_sub(1, std::memory_order_acq_rel) == 1)
        ready_now.push_back(s);
    std::lock_guard<std::mutex> lk(mu_);
    ++nodes_done_;
    for (const TaskId s : ready_now) push_tickets_locked(s, slot);
    if (nodes_done_ == g_.nodes_.size()) {
      done_ = true;
      ready_cv_.notify_all();
    } else if (tickets_ > 1) {
      // Wake one sleeper per ticket beyond the one this thread is about
      // to pop itself (complete() is always followed by a pop).  A
      // notify_all here would stampede every sleeper at every node
      // completion; waking for the finisher's own ticket is futile and
      // both waste CPU and count as scheduler wait.  During thin
      // stretches with one runnable node, extra workers therefore sleep
      // through to the join — idle exactly like the barrier engine's
      // parked pool workers.
      std::uint64_t wake = tickets_ - 1;
      if (wake > static_cast<std::uint64_t>(threads_ - 1))
        wake = static_cast<std::uint64_t>(threads_ - 1);
      for (; wake > 0; --wake) ready_cv_.notify_one();
    }
  }

  /// Publishes min(chunks, threads) tickets for a newly ready node —
  /// one to the finisher's own deque, the rest round-robin — and
  /// returns how many were pushed.
  std::uint64_t push_tickets_locked(TaskId id, int slot) {
    Node& m = g_.nodes_[id];
    if (m.fence >= 0 &&
        !g_.nodes_[static_cast<TaskId>(m.fence)].done.load(
            std::memory_order_acquire)) {
      m.overlap = true;
      ++overlap_tasks_;
    }
    const std::uint64_t want =
        m.nchunks < static_cast<std::uint64_t>(threads_)
            ? m.nchunks
            : static_cast<std::uint64_t>(threads_);
    for (std::uint64_t i = 0; i < want; ++i)
      deques_[(slot + static_cast<int>(i)) % threads_].push_back(id);
    tickets_ += want;
    if (tickets_ > hwm_) hwm_ = tickets_;
    last_push_ns_ = now_ns();
    return want;
  }

  /// First observer of the external stop flag: mark the region stopped
  /// and wake everyone so the DAG drains.
  void halt() {
    std::lock_guard<std::mutex> lk(mu_);
    stopped_.store(true, std::memory_order_relaxed);
    ready_cv_.notify_all();
  }

  void fail(std::exception_ptr e) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!error_) error_ = e;
    stopped_.store(true, std::memory_order_relaxed);
    ready_cv_.notify_all();
  }

  TaskGraph& g_;
  const std::atomic<bool>* stop_;
  const int threads_;

  std::mutex mu_;  ///< guards deques_, tickets_, nodes_done_, done_, error_
  std::condition_variable ready_cv_;
  std::vector<std::deque<TaskId>> deques_;  ///< per-slot ready tickets
  std::uint64_t tickets_ = 0;
  std::uint64_t hwm_ = 0;
  std::uint64_t last_push_ns_ = 0;  ///< guarded by mu_
  std::size_t nodes_done_ = 0;
  bool done_ = false;
  std::exception_ptr error_;
  /// Atomic so drain() can poll it without taking mu_ mid-node.
  std::atomic<bool> stopped_{false};

  std::atomic<std::uint64_t> tasks_{0};
  std::atomic<std::uint64_t> chunks_{0};
  std::uint64_t overlap_tasks_ = 0;          ///< guarded by mu_
  std::atomic<std::uint64_t> overlap_ns_{0};
  std::uint64_t wait_ns_ = 0;                ///< guarded by mu_
};

// ---------------------------------------------------------------------------

bool& TaskGraph::tl_in_region() {
  thread_local bool flag = false;
  return flag;
}

void TaskGraph::run(int threads, const std::atomic<bool>* stop) {
  OVO_CHECK_MSG(!ran_, "TaskGraph: run() is single-shot");
  ran_ = true;
  last_run_ = SchedStats{};
  if (nodes_.empty()) return;
  threads = ThreadPool::clamp_threads(threads);
  for (Node& n : nodes_) {
    n.cursor.store(n.begin, std::memory_order_relaxed);
    n.chunks_left.store(n.nchunks, std::memory_order_relaxed);
    n.waiting.store(n.preds, std::memory_order_relaxed);
  }
  if (threads <= 1 || ThreadPool::in_pool_worker() || tl_in_region()) {
    run_serial(stop);
    return;
  }
  GraphRegion region(*this, threads, stop);
  region.seed();
  const std::uint64_t extra64 =
      std::min<std::uint64_t>(static_cast<std::uint64_t>(threads - 1),
                              total_chunks_ - 1);
  ThreadPool::shared().run_region(region, static_cast<int>(extra64));
  last_run_ = region.stats();
  accumulate_global(last_run_);
  if (region.error()) std::rethrow_exception(region.error());
}

/// Serial fallback (threads <= 1, or a graph launched from inside a pool
/// worker): dependency order, slot 0, and the same per-chunk stop
/// polling as pooled execution, so budgets interrupt 1-thread runs no
/// later than pooled ones.  Ready nodes execute in the order they become
/// ready (seeded in id order), which for a graph built in topological
/// order reproduces the build order — callers rely on the publish
/// protocol, not on this order, for determinism.
void TaskGraph::run_serial(const std::atomic<bool>* stop) {
  std::deque<TaskId> ready;
  for (TaskId id = 0; id < nodes_.size(); ++id)
    if (nodes_[id].preds == 0) ready.push_back(id);
  SchedStats s;
  s.graphs = 1;
  bool stopped = false;
  while (!ready.empty() && !stopped) {
    const TaskId id = ready.front();
    ready.pop_front();
    Node& n = nodes_[id];
    OVO_TRACE_SPAN_ARGS(n.label, "sched", 0, n.akey, n.aval, n.bkey,
                        n.bval);
    for (std::uint64_t lo = n.begin; lo < n.end; lo += n.grain) {
      if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
        stopped = true;
        break;
      }
      const std::uint64_t hi = lo + n.grain < n.end ? lo + n.grain : n.end;
      rt::fault_dispatch_hook();
      n.chunk_body(lo, hi, 0);
      ++s.chunks;
    }
    if (stopped) break;
    n.done.store(true, std::memory_order_relaxed);
    ++s.tasks;
    for (const TaskId succ : n.succ)
      if (nodes_[succ].waiting.fetch_sub(1, std::memory_order_relaxed) == 1)
        ready.push_back(succ);
    if (ready.size() > s.ready_hwm) s.ready_hwm = ready.size();
  }
  last_run_ = s;
  accumulate_global(s);
}

}  // namespace ovo::par
