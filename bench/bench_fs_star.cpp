// Lemma 8 claim: FS* computes FS(<I, J>) from FS(I) in
// O*(2^{n-|I|-|J|} 3^{|J|}) time.  We sweep |I| and |J| on random
// functions, measure table cells, and compare against the closed form.

#include <cinttypes>
#include <cstdio>

#include "core/fs_star.hpp"
#include "quantum/analysis.hpp"
#include "tt/function_zoo.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

int main() {
  using namespace ovo;
  util::Xoshiro256 rng(5);

  const int n = 12;
  const tt::TruthTable t = tt::random_function(n, rng);
  std::printf("Lemma 8 reproduction: FS* cost extending FS(I) by block J "
              "(n = %d)\n\n",
              n);
  std::printf("%5s %5s %14s %14s %8s\n", "|I|", "|J|", "cells(meas)",
              "cells(pred)", "ratio");

  bool all_close = true;
  for (int isize = 0; isize <= 6; isize += 2) {
    for (int jsize = 2; jsize <= n - isize && jsize <= 8; jsize += 2) {
      // I = lowest isize vars, J = next jsize vars.
      const util::Mask I = util::full_mask(isize);
      const util::Mask J = util::full_mask(isize + jsize) & ~I;
      core::OpCounter ops;
      core::PrefixTable base = core::initial_table(t);
      util::for_each_bit(I, [&](int v) {
        base = core::compact(base, v, core::DiagramKind::kBdd);
      });
      (void)core::fs_star_full(base, J, core::DiagramKind::kBdd, &ops);
      const double predicted = quantum::fs_star_cells(n, isize, jsize);
      const double ratio =
          static_cast<double>(ops.table_cells) / predicted;
      all_close &= ratio > 0.8 && ratio < 1.25;
      std::printf("%5d %5d %14" PRIu64 " %14.0f %8.3f\n", isize, jsize,
                  ops.table_cells, predicted, ratio);
    }
  }
  std::printf("\nresult: %s\n",
              all_close ? "measured FS* cost matches the Lemma 8 bound"
                        : "MISMATCH against Lemma 8");
  return all_close ? 0 : 1;
}
