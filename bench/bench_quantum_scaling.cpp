// Theorems 10/13 claim: the quantum algorithm's time grows as
// O*(gamma^n) with gamma <= 2.83728 (k = 6) resp. 2.77286 (tower), versus
// FS's 3^n.  Absolute numbers come from a simulator, so we reproduce the
// *shape*: (a) simulated runs at small n whose charged quantum work
// undercuts the classical simulation work, and (b) the analytic recurrence
// evaluated at large n, whose fitted growth base must land near the
// paper's gamma and strictly below 3.

// Flags: --threads N (re-run each OptOBDD simulation with N pool threads
// and report the speedup; all statistics must agree exactly) and
// --json <path> (emit the per-n simulation rows as a JSON array; each
// row mirrors the run into the unified reorder cost-oracle ledger and
// carries its queries / evals / memo-hits counters).
//
// Budget flags (--timeout-ms / --node-limit / --mem-limit-mb /
// --work-limit) put one rt::Governor over the whole simulation sweep:
// each row's classical table cells are charged after it completes and
// the governor is polled between rows, so a trip skips the remaining
// (larger) rows.  Every emitted row carries its Outcome, the skipped
// rows are reported, and the growth-fit exit checks are waived (a
// truncated sweep no longer measures the full shape).

#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "core/minimize.hpp"
#include "obs/metrics.hpp"
#include "parallel/exec_policy.hpp"
#include "parallel/task_graph.hpp"
#include "quantum/analysis.hpp"
#include "quantum/opt_obdd.hpp"
#include "quantum/params.hpp"
#include "rt/budget.hpp"
#include "rt/checkpoint.hpp"
#include "tt/function_zoo.hpp"
#include "util/fit.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

void appendf(std::string& s, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  s += buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ovo;
  util::Xoshiro256 rng(7);

  int bench_threads = 1;
  std::string json_path;
  rt::Budget budget;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      bench_threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0 && i + 1 < argc) {
      budget.deadline_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--node-limit") == 0 && i + 1 < argc) {
      budget.node_limit = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--mem-limit-mb") == 0 && i + 1 < argc) {
      budget.bytes_limit =
          std::strtoull(argv[++i], nullptr, 10) * 1024 * 1024;
    } else if (std::strcmp(argv[i], "--work-limit") == 0 && i + 1 < argc) {
      budget.work_limit = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(
          stderr,
          "usage: bench_quantum_scaling [--threads N] [--json path] "
          "[--timeout-ms N] [--node-limit N] [--mem-limit-mb N] "
          "[--work-limit N]\n");
      return 2;
    }
  }
  par::ExecPolicy exec;
  exec.num_threads = bench_threads;
  const int resolved_threads = exec.resolved_threads();

  const bool budgeted = !budget.unlimited();
  rt::Governor gov(budget);
  if (budgeted) {
    std::printf("budgeted sweep: one governor over all rows (classical "
                "cells charged per row)\n\n");
  }

  // --- (a) simulated runs at small n --------------------------------------
  std::printf("OptOBDD simulation (k = 1, alpha = 0.27, accounting "
              "finder)\n\n");
  std::printf("%3s %12s %16s %18s %10s\n", "n", "FS cells",
              "sim classical", "quantum charged", "min ok");
  bool all_optimal = true;
  bool threads_match = true;
  std::vector<int> sim_ns;
  std::vector<double> sim_serial, sim_threaded;
  std::vector<std::string> sim_outcomes;
  std::vector<reorder::OracleStats> sim_oracle;
  std::vector<par::SchedStats> sim_sched;
  int rows_skipped = 0;
  for (int n = 5; n <= 11; ++n) {
    if (budgeted &&
        (gov.stopped() || gov.outcome() != rt::Outcome::kComplete)) {
      ++rows_skipped;
      continue;
    }
    const tt::TruthTable t = tt::random_function(n, rng);
    const core::MinimizeResult fs = core::fs_minimize(t);
    quantum::AccountingMinimumFinder finder(static_cast<double>(n));
    quantum::OptObddOptions opt;
    opt.alphas = {0.27};
    opt.finder = &finder;
    // Mirror the run into the unified cost-oracle ledger so the JSON rows
    // carry the same queries/evals/memo-hits fields as the FS bench.
    reorder::OracleStats ostats;
    opt.oracle_stats = &ostats;
    util::Timer timer;
    const quantum::OptObddResult q = quantum::opt_obdd_minimize(t, opt);
    const double serial_time = timer.seconds();
    double threaded_time = serial_time;
    par::SchedStats row_sched;
    if (resolved_threads > 1) {
      quantum::AccountingMinimumFinder finder_t(static_cast<double>(n));
      quantum::OptObddOptions opt_t = opt;
      opt_t.finder = &finder_t;
      opt_t.exec = exec;
      reorder::OracleStats ostats_t;
      opt_t.oracle_stats = &ostats_t;
      const par::SchedStats snap = par::sched_stats();
      timer.reset();
      const quantum::OptObddResult qt = quantum::opt_obdd_minimize(t, opt_t);
      threaded_time = timer.seconds();
      row_sched = par::sched_stats() - snap;
      threads_match &=
          qt.min_internal_nodes == q.min_internal_nodes &&
          qt.order_root_first == q.order_root_first &&
          qt.classical_ops.table_cells == q.classical_ops.table_cells &&
          ostats_t.queries == ostats.queries &&
          ostats_t.evals == ostats.evals;
    }
    if (budgeted) {
      // The row ran to completion before its cost is known, so charge it
      // afterwards; the poll inside charge() also checks the wall clock.
      gov.charge(q.classical_ops.table_cells);
    }
    sim_ns.push_back(n);
    sim_serial.push_back(serial_time);
    sim_threaded.push_back(threaded_time);
    sim_outcomes.push_back(rt::outcome_name(gov.outcome()));
    sim_oracle.push_back(ostats);
    sim_sched.push_back(row_sched);
    const bool ok = q.min_internal_nodes == fs.min_internal_nodes;
    all_optimal &= ok;
    std::printf("%3d %12llu %16llu %18.0f %10s\n", n,
                static_cast<unsigned long long>(fs.ops.table_cells),
                static_cast<unsigned long long>(q.classical_ops.table_cells),
                q.quantum.quantum_charged_cells, ok ? "yes" : "NO");
  }
  if (budgeted) {
    std::printf("\nbudget outcome: %s (%d of 7 rows skipped)\n",
                rt::outcome_name(gov.outcome()), rows_skipped);
  }

  // --- (b) analytic recurrence at large n ----------------------------------
  std::printf("\nAnalytic recurrence (Theorem 10, k = 6 paper alphas) vs "
              "FS, n = 30..60:\n\n");
  const quantum::ChainSolution k6 = quantum::solve_alphas(6, 3.0);
  std::printf("%4s %16s %16s %12s\n", "n", "log2 FS cells",
              "log2 quantum", "advantage");
  for (int n = 30; n <= 60; n += 5) {
    const auto bounds = quantum::realize_boundaries(k6.alphas, n);
    const quantum::PredictedCost pc =
        quantum::opt_obdd_predicted_cells(n, bounds);
    const double fs = quantum::fs_total_cells(n);
    std::printf("%4d %16.2f %16.2f %11.1fx\n", n, std::log2(fs),
                std::log2(pc.total), fs / pc.total);
  }

  // Fit the growth bases far out where the O*(.)-hidden polynomial factor
  // stops biasing the slope.
  std::vector<int> ns;
  std::vector<double> fs_curve, q_curve;
  for (int n = 100; n <= 220; n += 10) {
    const auto bounds = quantum::realize_boundaries(k6.alphas, n);
    ns.push_back(n);
    fs_curve.push_back(quantum::fs_total_cells(n));
    q_curve.push_back(quantum::opt_obdd_predicted_cells(n, bounds).total);
  }
  const util::ExponentFit fs_fit = util::fit_exponent(ns, fs_curve);
  const util::ExponentFit q_fit = util::fit_exponent(ns, q_curve);
  std::printf("\nfitted growth bases (n = 100..220): FS %.4f (paper 3.0), "
              "quantum %.4f (paper gamma_6 = %.5f)\n",
              fs_fit.base, q_fit.base, k6.gamma);

  if (resolved_threads > 1) {
    std::printf("\nparallel OptOBDD (%d threads): largest-n speedup %.2fx, "
                "results identical to serial: %s\n",
                resolved_threads, sim_serial.back() / sim_threaded.back(),
                threads_match ? "yes" : "NO");
  }

  if (!json_path.empty()) {
    // Same crash-atomic discipline as the FS bench: the rows stream to a
    // temp file and only a committed run renames it over json_path.
    std::optional<rt::AtomicFileWriter> writer;
    try {
      writer.emplace(json_path);
    } catch (const rt::CheckpointError& e) {
      std::fprintf(stderr, "cannot write '%s': %s\n", json_path.c_str(),
                   e.what());
      return 2;
    }
    std::FILE* out = writer->stream();
    std::fprintf(out, "[\n");
    for (std::size_t i = 0; i < sim_ns.size(); ++i) {
      // Counters render through the obs shared serializer, so the keys
      // here are the metric table's — identical to the FS bench and CLI.
      obs::Ledger l;
      sim_oracle[i].to_ledger(l);
      sim_sched[i].to_ledger(l);
      std::string row = "  {";
      appendf(row, "\"n\":%d", sim_ns[i]);
      appendf(row, ",\"seconds_serial\":%.6f", sim_serial[i]);
      appendf(row, ",\"seconds_threads\":%.6f", sim_threaded[i]);
      appendf(row, ",\"speedup\":%.4f", sim_serial[i] / sim_threaded[i]);
      obs::append_json_str(row, "outcome", sim_outcomes[i].c_str());
      obs::append_metrics_json(
          row, l,
          {obs::Metric::kOracleQueries, obs::Metric::kOracleEvals,
           obs::Metric::kOracleMemoHits, obs::Metric::kSchedTasks,
           obs::Metric::kSchedChunks, obs::Metric::kSchedReadyHwm,
           obs::Metric::kSchedOverlapTasks, obs::Metric::kSchedOverlapNs,
           obs::Metric::kSchedBarrierWaitNs});
      obs::append_run_info_json(row, resolved_threads);
      std::fprintf(out, "%s}%s\n", row.c_str(),
                   i + 1 < sim_ns.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
    writer->commit();
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (budgeted) {
    // A truncated sweep no longer measures the claimed shape; report what
    // ran and exit clean.
    std::printf("result: budgeted sweep finished (%s); shape checks "
                "waived\n",
                rt::outcome_name(gov.outcome()));
    return 0;
  }
  const bool shape_ok = all_optimal && threads_match &&
                        q_fit.base < fs_fit.base &&
                        std::fabs(q_fit.base - k6.gamma) < 0.05 &&
                        std::fabs(fs_fit.base - 3.0) < 0.02;
  std::printf("result: %s\n",
              shape_ok
                  ? "quantum growth base lands at gamma_6, below FS's 3^n"
                  : "MISMATCH in growth bases");
  return shape_ok ? 0 : 1;
}
