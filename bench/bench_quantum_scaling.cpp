// Theorems 10/13 claim: the quantum algorithm's time grows as
// O*(gamma^n) with gamma <= 2.83728 (k = 6) resp. 2.77286 (tower), versus
// FS's 3^n.  Absolute numbers come from a simulator, so we reproduce the
// *shape*: (a) simulated runs at small n whose charged quantum work
// undercuts the classical simulation work, and (b) the analytic recurrence
// evaluated at large n, whose fitted growth base must land near the
// paper's gamma and strictly below 3.

#include <cmath>
#include <cstdio>

#include "core/minimize.hpp"
#include "quantum/analysis.hpp"
#include "quantum/opt_obdd.hpp"
#include "quantum/params.hpp"
#include "tt/function_zoo.hpp"
#include "util/fit.hpp"
#include "util/rng.hpp"

int main() {
  using namespace ovo;
  util::Xoshiro256 rng(7);

  // --- (a) simulated runs at small n --------------------------------------
  std::printf("OptOBDD simulation (k = 1, alpha = 0.27, accounting "
              "finder)\n\n");
  std::printf("%3s %12s %16s %18s %10s\n", "n", "FS cells",
              "sim classical", "quantum charged", "min ok");
  bool all_optimal = true;
  for (int n = 5; n <= 11; ++n) {
    const tt::TruthTable t = tt::random_function(n, rng);
    const core::MinimizeResult fs = core::fs_minimize(t);
    quantum::AccountingMinimumFinder finder(static_cast<double>(n));
    quantum::OptObddOptions opt;
    opt.alphas = {0.27};
    opt.finder = &finder;
    const quantum::OptObddResult q = quantum::opt_obdd_minimize(t, opt);
    const bool ok = q.min_internal_nodes == fs.min_internal_nodes;
    all_optimal &= ok;
    std::printf("%3d %12llu %16llu %18.0f %10s\n", n,
                static_cast<unsigned long long>(fs.ops.table_cells),
                static_cast<unsigned long long>(q.classical_ops.table_cells),
                q.quantum.quantum_charged_cells, ok ? "yes" : "NO");
  }

  // --- (b) analytic recurrence at large n ----------------------------------
  std::printf("\nAnalytic recurrence (Theorem 10, k = 6 paper alphas) vs "
              "FS, n = 30..60:\n\n");
  const quantum::ChainSolution k6 = quantum::solve_alphas(6, 3.0);
  std::printf("%4s %16s %16s %12s\n", "n", "log2 FS cells",
              "log2 quantum", "advantage");
  for (int n = 30; n <= 60; n += 5) {
    const auto bounds = quantum::realize_boundaries(k6.alphas, n);
    const quantum::PredictedCost pc =
        quantum::opt_obdd_predicted_cells(n, bounds);
    const double fs = quantum::fs_total_cells(n);
    std::printf("%4d %16.2f %16.2f %11.1fx\n", n, std::log2(fs),
                std::log2(pc.total), fs / pc.total);
  }

  // Fit the growth bases far out where the O*(.)-hidden polynomial factor
  // stops biasing the slope.
  std::vector<int> ns;
  std::vector<double> fs_curve, q_curve;
  for (int n = 100; n <= 220; n += 10) {
    const auto bounds = quantum::realize_boundaries(k6.alphas, n);
    ns.push_back(n);
    fs_curve.push_back(quantum::fs_total_cells(n));
    q_curve.push_back(quantum::opt_obdd_predicted_cells(n, bounds).total);
  }
  const util::ExponentFit fs_fit = util::fit_exponent(ns, fs_curve);
  const util::ExponentFit q_fit = util::fit_exponent(ns, q_curve);
  std::printf("\nfitted growth bases (n = 100..220): FS %.4f (paper 3.0), "
              "quantum %.4f (paper gamma_6 = %.5f)\n",
              fs_fit.base, q_fit.base, k6.gamma);

  const bool shape_ok = all_optimal && q_fit.base < fs_fit.base &&
                        std::fabs(q_fit.base - k6.gamma) < 0.05 &&
                        std::fabs(fs_fit.base - 3.0) < 0.02;
  std::printf("result: %s\n",
              shape_ok
                  ? "quantum growth base lands at gamma_6, below FS's 3^n"
                  : "MISMATCH in growth bases");
  return shape_ok ? 0 : 1;
}
