// Substrate microbenchmarks (google-benchmark): throughput of the ROBDD
// package operations the ordering algorithms sit on — construction from
// truth tables, ITE, satcount — plus the chain-compaction size oracle and
// a full FS run.

#include <benchmark/benchmark.h>

#include <numeric>

#include "bdd/manager.hpp"
#include "core/minimize.hpp"
#include "tt/function_zoo.hpp"
#include "util/rng.hpp"

namespace {

/// Surfaces the ovo::ds always-on unique-table / computed-cache counters
/// as benchmark counters (from the last iteration's manager).
void report_store_counters(benchmark::State& state,
                           const ovo::bdd::Manager::Stats& s) {
  state.counters["uniq_hit%"] = 100.0 * s.unique.hit_rate();
  state.counters["uniq_probe"] = s.unique.avg_probe_length();
  state.counters["uniq_resizes"] = static_cast<double>(s.unique.resizes);
  state.counters["cache_hit%"] = 100.0 * s.cache.hit_rate();
  state.counters["cache_evict"] = static_cast<double>(s.cache.evictions);
}

void BM_BddFromTruthTable(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ovo::util::Xoshiro256 rng(1);
  const ovo::tt::TruthTable t = ovo::tt::random_function(n, rng);
  ovo::bdd::Manager::Stats last;
  for (auto _ : state) {
    ovo::bdd::Manager m(n);
    benchmark::DoNotOptimize(m.from_truth_table(t));
    last = m.stats();
  }
  report_store_counters(state, last);
  state.SetComplexityN(n);
}
BENCHMARK(BM_BddFromTruthTable)->DenseRange(8, 16, 2);

void BM_BddIte(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ovo::util::Xoshiro256 rng(2);
  const ovo::tt::TruthTable ta = ovo::tt::random_function(n, rng);
  const ovo::tt::TruthTable tb = ovo::tt::random_function(n, rng);
  ovo::bdd::Manager::Stats last;
  for (auto _ : state) {
    ovo::bdd::Manager m(n);
    const auto a = m.from_truth_table(ta);
    const auto b = m.from_truth_table(tb);
    benchmark::DoNotOptimize(m.apply_xor(a, b));
    last = m.stats();
  }
  report_store_counters(state, last);
}
BENCHMARK(BM_BddIte)->DenseRange(8, 14, 2);

void BM_BddSatcount(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ovo::util::Xoshiro256 rng(3);
  ovo::bdd::Manager m(n);
  const auto f = m.from_truth_table(ovo::tt::random_function(n, rng));
  for (auto _ : state) benchmark::DoNotOptimize(m.satcount(f));
}
BENCHMARK(BM_BddSatcount)->DenseRange(8, 16, 4);

void BM_SizeOracle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ovo::util::Xoshiro256 rng(4);
  const ovo::tt::TruthTable t = ovo::tt::random_function(n, rng);
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (auto _ : state)
    benchmark::DoNotOptimize(ovo::core::diagram_size_for_order(t, order));
}
BENCHMARK(BM_SizeOracle)->DenseRange(8, 16, 2);

void BM_FsMinimize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ovo::util::Xoshiro256 rng(5);
  const ovo::tt::TruthTable t = ovo::tt::random_function(n, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(ovo::core::fs_minimize(t));
}
BENCHMARK(BM_FsMinimize)->DenseRange(6, 12, 2)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
