// Micro-benchmark: ds::UniqueTable vs std::unordered_map on the two access
// patterns the diagram managers generate — hash-consing during a bottom-up
// table build (high hit rate, sequential ids) and ITE-style probing (mixed
// hit/miss over a churning key set).  Run with --benchmark_format=json for
// machine-readable output.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ds/hash.hpp"
#include "ds/unique_table.hpp"
#include "util/rng.hpp"

namespace {

/// The seed's hash (murmur3 finalizer without the second multiply), kept
/// for an apples-to-apples unordered_map comparison.
struct PairHash {
  std::size_t operator()(std::uint64_t k) const {
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdull;
    k ^= k >> 33;
    return static_cast<std::size_t>(k);
  }
};

/// Synthetic make() workload: `ops` find-or-insert calls over a key space
/// of `distinct` (lo, hi) pairs — each distinct key gets the next dense id,
/// duplicates hit.  Mirrors hash consing during from_truth_table/compact.
std::vector<std::uint64_t> make_workload(std::uint64_t ops,
                                         std::uint32_t distinct,
                                         std::uint64_t seed) {
  ovo::util::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> keys;
  keys.reserve(ops);
  for (std::uint64_t i = 0; i < ops; ++i) {
    const std::uint32_t lo = static_cast<std::uint32_t>(rng.below(distinct));
    const std::uint32_t hi =
        static_cast<std::uint32_t>(rng.below(distinct)) + 1;
    keys.push_back(ovo::ds::pack_pair(lo, hi));
  }
  return keys;
}

void BM_UniqueTableMake(benchmark::State& state) {
  const auto distinct = static_cast<std::uint32_t>(state.range(0));
  const std::vector<std::uint64_t> keys =
      make_workload(4 * std::uint64_t{distinct}, distinct, 99);
  for (auto _ : state) {
    ovo::ds::UniqueTable table;
    std::uint32_t next_id = 2;
    for (const std::uint64_t k : keys) {
      const auto [id, inserted] = table.find_or_insert(k, next_id);
      if (inserted) ++next_id;
      benchmark::DoNotOptimize(id);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(keys.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_UniqueTableMake)->RangeMultiplier(8)->Range(1 << 8, 1 << 17);

void BM_UnorderedMapMake(benchmark::State& state) {
  const auto distinct = static_cast<std::uint32_t>(state.range(0));
  const std::vector<std::uint64_t> keys =
      make_workload(4 * std::uint64_t{distinct}, distinct, 99);
  for (auto _ : state) {
    std::unordered_map<std::uint64_t, std::uint32_t, PairHash> table;
    std::uint32_t next_id = 2;
    for (const std::uint64_t k : keys) {
      const auto [it, inserted] = table.emplace(k, next_id);
      if (inserted) ++next_id;
      benchmark::DoNotOptimize(it->second);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(keys.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_UnorderedMapMake)->RangeMultiplier(8)->Range(1 << 8, 1 << 17);

/// ITE-style workload: a warm table of `distinct` entries probed with a mix
/// of ~50% present keys (cache hits) and ~50% absent keys.
void BM_UniqueTableProbe(benchmark::State& state) {
  const auto distinct = static_cast<std::uint32_t>(state.range(0));
  const std::vector<std::uint64_t> warm = make_workload(distinct, distinct, 7);
  const std::vector<std::uint64_t> probes =
      make_workload(4 * std::uint64_t{distinct}, 2 * distinct, 8);
  ovo::ds::UniqueTable table;
  std::uint32_t next_id = 2;
  for (const std::uint64_t k : warm) {
    const auto [id, inserted] = table.find_or_insert(k, next_id);
    if (inserted) ++next_id;
  }
  for (auto _ : state) {
    std::uint64_t found = 0;
    for (const std::uint64_t k : probes)
      if (table.find(k) != nullptr) ++found;
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(probes.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_UniqueTableProbe)->RangeMultiplier(8)->Range(1 << 8, 1 << 17);

void BM_UnorderedMapProbe(benchmark::State& state) {
  const auto distinct = static_cast<std::uint32_t>(state.range(0));
  const std::vector<std::uint64_t> warm = make_workload(distinct, distinct, 7);
  const std::vector<std::uint64_t> probes =
      make_workload(4 * std::uint64_t{distinct}, 2 * distinct, 8);
  std::unordered_map<std::uint64_t, std::uint32_t, PairHash> table;
  std::uint32_t next_id = 2;
  for (const std::uint64_t k : warm) {
    const auto [it, inserted] = table.emplace(k, next_id);
    if (inserted) ++next_id;
    (void)it;
  }
  for (auto _ : state) {
    std::uint64_t found = 0;
    for (const std::uint64_t k : probes)
      if (table.find(k) != table.end()) ++found;
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(probes.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_UnorderedMapProbe)->RangeMultiplier(8)->Range(1 << 8, 1 << 17);

}  // namespace

BENCHMARK_MAIN();
