// Cross-engine comparison of the exact ordering methods in this
// repository: the FS dynamic program (the paper's algorithm), the
// bound-pruned sparse FS* variant (sift-seeded incumbent), and branch
// and bound with admissible bounds — plus the stochastic baselines.
// All must agree on the optimum; the interesting columns are the work
// counters, and for the pruned DP the fraction of the subset lattice it
// never materializes.
//
// --json <path> writes the per-case rows as a JSON array, atomically
// (temp file + fsync + rename), so an interrupted bench never leaves a
// torn artifact.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <optional>
#include <string>

#include "core/minimize.hpp"
#include "parallel/exec_policy.hpp"
#include "reorder/annealing.hpp"
#include "reorder/baselines.hpp"
#include "reorder/branch_and_bound.hpp"
#include "rt/checkpoint.hpp"
#include "tt/function_zoo.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace ovo;
  util::Xoshiro256 rng(2025);

  std::string json_path;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  std::optional<rt::AtomicFileWriter> writer;
  if (!json_path.empty()) {
    try {
      writer.emplace(json_path);
    } catch (const rt::CheckpointError& e) {
      std::fprintf(stderr, "cannot write '%s': %s\n", json_path.c_str(),
                   e.what());
      return 2;
    }
    std::fprintf(writer->stream(), "[\n");
  }

  struct Case {
    const char* name;
    tt::TruthTable t;
  };
  std::vector<Case> cases;
  cases.push_back({"pair_sum(5), n=10", tt::pair_sum(5)});
  cases.push_back({"hwb(10)", tt::hidden_weighted_bit(10)});
  cases.push_back({"adder_carry(10)", tt::adder_carry(10)});
  cases.push_back({"mult_mid(10)", tt::multiplier_middle_bit(10)});
  cases.push_back({"random(10)", tt::random_function(10, rng)});

  std::printf("Exact-engine agreement and work (n = 10)\n\n");
  std::printf("%-20s %8s | %12s %10s | %12s %8s %10s | %12s %10s %10s\n",
              "function", "opt", "FS cells", "FS ms", "FS* cells", "prune%",
              "FS* ms", "BnB states", "BnB ms", "pruned");

  // The pruned FS* runs share the B&B warm start: one sift pass seeds
  // both incumbents, so the two pruning columns are an apples-to-apples
  // read on the same upper bound.
  par::ExecPolicy pruned_exec;
  pruned_exec.prune = par::PruneMode::kBounds;

  bool agree = true;
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const Case& c = cases[ci];
    util::Timer t1;
    const core::MinimizeResult fs = core::fs_minimize(c.t);
    const double fs_ms = t1.millis();

    // Warm-start B&B and the pruned DP with sifting.
    std::vector<int> id(static_cast<std::size_t>(c.t.num_vars()));
    std::iota(id.begin(), id.end(), 0);
    const std::uint64_t incumbent = reorder::sift(c.t, id).internal_nodes;

    util::Timer t3;
    const core::MinimizeResult fsp = core::fs_minimize(
        c.t, core::DiagramKind::kBdd, pruned_exec, incumbent);
    const double fsp_ms = t3.millis();

    util::Timer t2;
    const reorder::BnbResult bnb = reorder::branch_and_bound_minimize(
        c.t, core::DiagramKind::kBdd, incumbent);
    const double bnb_ms = t2.millis();

    agree &= fs.min_internal_nodes == bnb.internal_nodes &&
             fsp.min_internal_nodes == fs.min_internal_nodes &&
             fsp.order_root_first == fs.order_root_first;
    std::printf("%-20s %8" PRIu64 " | %12" PRIu64 " %10.1f | %12" PRIu64
                " %7.2f%% %10.1f | %12" PRIu64 " %10.1f %10" PRIu64 "\n",
                c.name, fs.min_internal_nodes, fs.ops.table_cells, fs_ms,
                fsp.ops.prune.sparse_cells,
                100.0 * fsp.ops.prune.prune_ratio(), fsp_ms,
                bnb.states_expanded, bnb_ms,
                bnb.states_pruned_bound + bnb.states_pruned_dominance);
    if (writer) {
      std::fprintf(writer->stream(),
                   "  {\"function\": \"%s\", \"optimum\": %" PRIu64
                   ", \"fs_cells\": %" PRIu64 ", \"fs_ms\": %.3f"
                   ", \"fs_star_sparse_cells\": %" PRIu64
                   ", \"prune_ratio\": %.4f, \"fs_star_ms\": %.3f"
                   ", \"bnb_states\": %" PRIu64 ", \"bnb_ms\": %.3f"
                   ", \"bnb_pruned\": %" PRIu64 "}%s\n",
                   c.name, fs.min_internal_nodes, fs.ops.table_cells, fs_ms,
                   fsp.ops.prune.sparse_cells, fsp.ops.prune.prune_ratio(),
                   fsp_ms, bnb.states_expanded, bnb_ms,
                   bnb.states_pruned_bound + bnb.states_pruned_dominance,
                   ci + 1 < cases.size() ? "," : "");
    }
  }
  if (writer) {
    std::fprintf(writer->stream(), "]\n");
    writer->commit();
    std::printf("wrote %s\n", json_path.c_str());
  }

  std::printf("\nstochastic baselines on hwb(10) (optimum above):\n");
  const tt::TruthTable& hwb = cases[1].t;
  std::vector<int> id(10);
  std::iota(id.begin(), id.end(), 0);
  const auto sa = reorder::simulated_annealing(hwb, id,
                                               reorder::AnnealOptions{}, rng);
  const auto rr = reorder::random_restart(hwb, 50, rng);
  std::printf("  annealing: %" PRIu64 " nodes (%" PRIu64
              " evals), random-restart(50): %" PRIu64 " nodes\n",
              sa.internal_nodes, sa.orders_evaluated, rr.internal_nodes);

  std::printf("\nresult: %s\n",
              agree ? "FS, bound-pruned FS*, and branch-and-bound agree "
                      "on every optimum"
                    : "MISMATCH between exact engines");
  return agree ? 0 : 1;
}
