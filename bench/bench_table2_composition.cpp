// Reproduces Table 2 of the paper: the composition tower (Sec. 4.2).
// Starting from gamma = 3 (the FS* base), repeatedly solving the k = 6
// balance system with g_gamma in place of g_3 drives the complexity base
// down to the fixpoint 2.77286 (Theorem 13's constant) by the tenth
// composition.

#include <cmath>
#include <cstdio>

#include "quantum/params.hpp"

int main() {
  using namespace ovo::quantum;

  const double paper_beta[] = {2.83728, 2.79364, 2.77981, 2.77521, 2.77366,
                               2.77313, 2.77295, 2.77289, 2.77287, 2.77286};
  const auto rows = composition_tower(6, 10);

  std::printf("Table 2 reproduction: composition tower "
              "OptOBDD*_Gamma(6, alpha)\n\n");
  std::printf("%4s %-12s %-12s  %s\n", "iter", "beta(meas)", "beta(paper)",
              "alpha vector (measured)");
  double max_err = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    max_err = std::max(max_err, std::fabs(rows[i].gamma - paper_beta[i]));
    std::printf("%4zu %-12.5f %-12.5f  ", i + 1, rows[i].gamma,
                paper_beta[i]);
    for (const double a : rows[i].alphas) std::printf("%.6f ", a);
    std::printf("\n");
  }
  std::printf("\nTheorem 13 headline: gamma at composition 10 = %.5f "
              "(paper: <= 2.77286)\n",
              rows.back().gamma);
  std::printf("max |measured - paper| over beta column: %.2e\n", max_err);
  std::printf("result: %s\n", max_err < 5e-4
                                  ? "Table 2 reproduced to printed precision"
                                  : "MISMATCH against the paper");
  return max_err < 5e-4 ? 0 : 1;
}
