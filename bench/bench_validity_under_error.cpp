// Theorem 1's validity claim: "the OBDD produced by our algorithm is
// always a valid one for f, although it is not minimum with an
// exponentially small probability."  We sweep the minimum-finder failure
// rate and verify that (a) every produced ordering yields a valid OBDD for
// f, and (b) the fraction of non-minimum outputs tracks the injected
// failure rate (and vanishes at rate 0).

#include <cstdio>

#include "bdd/manager.hpp"
#include "core/minimize.hpp"
#include "quantum/opt_obdd.hpp"
#include "tt/function_zoo.hpp"
#include "util/rng.hpp"

int main() {
  using namespace ovo;
  util::Xoshiro256 rng(99);

  std::printf("Theorem 1 validity: OptOBDD output under minimum-finder "
              "failures\n\n");
  std::printf("%12s %8s %10s %12s %12s\n", "fail rate", "trials", "valid",
              "minimum", "avg excess");

  const double rates[] = {0.0, 0.1, 0.3, 0.6, 0.9};
  const int trials = 20;
  bool always_valid = true;
  bool zero_rate_always_min = true;
  for (const double rate : rates) {
    int valid = 0, minimum = 0;
    double excess = 0.0;
    for (int t = 0; t < trials; ++t) {
      const tt::TruthTable f = tt::random_function(7, rng);
      const std::uint64_t opt_size =
          core::fs_minimize(f).min_internal_nodes;
      quantum::AccountingMinimumFinder finder(
          7.0, rate, static_cast<std::uint64_t>(t) * 17 + 1);
      quantum::OptObddOptions opt;
      opt.alphas = {0.3};
      opt.finder = &finder;
      const quantum::OptObddResult q = quantum::opt_obdd_minimize(f, opt);
      bdd::Manager m(7, q.order_root_first);
      const bool is_valid =
          m.to_truth_table(m.from_truth_table(f)) == f;
      valid += is_valid ? 1 : 0;
      always_valid &= is_valid;
      if (q.min_internal_nodes == opt_size) {
        ++minimum;
      } else {
        excess += static_cast<double>(q.min_internal_nodes - opt_size);
      }
      if (rate == 0.0 && q.min_internal_nodes != opt_size)
        zero_rate_always_min = false;
    }
    std::printf("%12.2f %8d %9d/%d %11d/%d %12.2f\n", rate, trials, valid,
                trials, minimum, trials,
                minimum == trials ? 0.0 : excess / (trials - minimum));
  }

  std::printf("\nresult: %s\n",
              (always_valid && zero_rate_always_min)
                  ? "every output is a valid OBDD; error-free runs are "
                    "always minimum (matches Theorem 1)"
                  : "MISMATCH against Theorem 1");
  return (always_valid && zero_rate_always_min) ? 0 : 1;
}
