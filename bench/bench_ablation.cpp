// Ablations of the quantum algorithm's design choices (DESIGN.md):
//   1. number of division points k — the Table 1 trend gamma_1 > ... >
//      gamma_6, shown on the analytic recurrence and on simulated runs;
//   2. the classical preprocess of Sec. 3.1 — removing it (gamma_0
//      regime) must cost more charged quantum work than keeping it
//      (gamma_1 regime);
//   3. minimum-finder backend — accounting model vs amplitude-level
//      Dürr–Høyer query counts.

#include <cmath>
#include <cstdio>

#include "core/minimize.hpp"
#include "quantum/analysis.hpp"
#include "quantum/opt_obdd.hpp"
#include "quantum/params.hpp"
#include "tt/function_zoo.hpp"
#include "util/rng.hpp"

int main() {
  using namespace ovo;
  bool ok = true;

  // --- 1. division points ---------------------------------------------------
  std::printf("Ablation 1: division points k (analytic, n = 60)\n\n");
  std::printf("%2s %10s %16s\n", "k", "gamma_k", "log2 cells(n=60)");
  double prev_cells = 1e300;
  for (int k = 1; k <= 6; ++k) {
    const quantum::ChainSolution s = quantum::solve_alphas(k, 3.0);
    const auto bounds = quantum::realize_boundaries(s.alphas, 60);
    const double cells =
        quantum::opt_obdd_predicted_cells(60, bounds).total;
    std::printf("%2d %10.5f %16.2f\n", k, s.gamma, std::log2(cells));
    ok &= cells <= prev_cells * 1.0001;
    prev_cells = cells;
  }
  std::printf("  (cells must be non-increasing in k: %s)\n\n",
              ok ? "yes" : "NO");

  // --- 2. preprocess on/off ---------------------------------------------------
  std::printf("Ablation 2: Sec 3.1 classical preprocess (measured, k = 1, "
              "alpha = 0.27)\n\n");
  std::printf("%3s %20s %20s %8s\n", "n", "charged (with pre)",
              "charged (no pre)", "ratio");
  util::Xoshiro256 rng(5);
  bool pre_helps = true;
  for (int n = 8; n <= 10; ++n) {
    const tt::TruthTable f = tt::random_function(n, rng);
    quantum::AccountingMinimumFinder finder(static_cast<double>(n));
    quantum::OptObddOptions opt;
    opt.alphas = {0.27};
    opt.finder = &finder;
    const auto with_pre = quantum::opt_obdd_minimize(f, opt);
    opt.use_preprocess = false;
    const auto no_pre = quantum::opt_obdd_minimize(f, opt);
    pre_helps &= with_pre.quantum.quantum_charged_cells <
                 no_pre.quantum.quantum_charged_cells;
    ok &= with_pre.min_internal_nodes == no_pre.min_internal_nodes;
    std::printf("%3d %20.0f %20.0f %8.2f\n", n,
                with_pre.quantum.quantum_charged_cells,
                no_pre.quantum.quantum_charged_cells,
                no_pre.quantum.quantum_charged_cells /
                    with_pre.quantum.quantum_charged_cells);
  }
  ok &= pre_helps;
  std::printf("  (preprocess reduces charged work, as gamma_1 < gamma_0: "
              "%s)\n\n",
              pre_helps ? "yes" : "NO");

  // --- 3. finder backends -----------------------------------------------------
  std::printf("Ablation 3: minimum-finder backends (n = 8, k = 1)\n\n");
  const tt::TruthTable f = tt::pair_sum(4);
  const std::uint64_t opt_size = core::fs_minimize(f).min_internal_nodes;
  quantum::AccountingMinimumFinder acc(8.0);
  quantum::GroverMinimumFinder grover(4, 99);
  for (quantum::MinimumFinder* finder :
       {static_cast<quantum::MinimumFinder*>(&acc),
        static_cast<quantum::MinimumFinder*>(&grover)}) {
    quantum::OptObddOptions o;
    o.alphas = {0.27};
    o.finder = finder;
    const auto r = quantum::opt_obdd_minimize(f, o);
    std::printf("  %-22s queries=%8.0f  calls=%2d  failures=%d  size=%llu "
                "(opt %llu)\n",
                finder == &acc ? "accounting (Lemma 6)" : "Durr-Hoyer (sim)",
                r.quantum.quantum_queries, r.quantum.min_find_calls,
                r.quantum.min_find_failures,
                static_cast<unsigned long long>(r.min_internal_nodes),
                static_cast<unsigned long long>(opt_size));
    ok &= r.min_internal_nodes == opt_size;
  }

  std::printf("\nresult: %s\n",
              ok ? "all ablations consistent with the paper's analysis"
                 : "MISMATCH in ablations");
  return ok ? 0 : 1;
}
