// Reproduces Table 1 of the paper: the optimal division-point fractions
// alpha_1..alpha_k and the resulting complexity base gamma_k of
// OptOBDD(k, alpha), for k = 1..6, obtained by numerically solving the
// balance system Eqs. (8)-(9).  Also prints the Sec. 3.1 constants
// gamma_0 (no preprocess) and the Appendix B two-parameter case.

#include <cmath>
#include <cstdio>

#include "quantum/params.hpp"

int main() {
  using namespace ovo::quantum;

  struct Row {
    int k;
    double gamma;
    double alphas[6];
    int count;
  };
  const Row paper[] = {
      {1, 2.97625, {0.274862}, 1},
      {2, 2.85690, {0.192754, 0.334571}, 2},
      {3, 2.83925, {0.184664, 0.205128, 0.342677}, 3},
      {4, 2.83744, {0.183859, 0.186017, 0.206375, 0.343503}, 4},
      {5, 2.83729, {0.183795, 0.183967, 0.186125, 0.206474, 0.343569}, 5},
      {6,
       2.83728,
       {0.183791, 0.183802, 0.183974, 0.186131, 0.206480, 0.343573},
       6},
  };

  std::printf("Table 1 reproduction: gamma_k and alpha vectors of "
              "OptOBDD(k, alpha)\n\n");
  std::printf("gamma_0 (Sec 3.1, no preprocess): measured %.5f   paper "
              "2.98581\n\n",
              gamma_no_preprocess());
  std::printf("%2s  %-10s %-10s  %s\n", "k", "gamma(meas)", "gamma(paper)",
              "alpha_1..alpha_k (measured | paper)");

  double max_err = 0.0;
  for (const Row& row : paper) {
    const ChainSolution s = solve_alphas(row.k, 3.0);
    max_err = std::max(max_err, std::fabs(s.gamma - row.gamma));
    std::printf("%2d  %-10.5f %-10.5f  ", row.k, s.gamma, row.gamma);
    for (int i = 0; i < row.count; ++i) {
      max_err = std::max(max_err, std::fabs(s.alphas[static_cast<std::size_t>(
                                                i)] -
                                            row.alphas[i]));
      std::printf("%.6f|%.6f ", s.alphas[static_cast<std::size_t>(i)],
                  row.alphas[i]);
    }
    std::printf("\n");
  }
  std::printf("\nmax |measured - paper| over all entries: %.2e\n", max_err);
  std::printf("result: %s\n", max_err < 5e-4
                                  ? "Table 1 reproduced to printed precision"
                                  : "MISMATCH against the paper");
  return max_err < 5e-4 ? 0 : 1;
}
