// The paper's Sec. 1.1 motivation for exact methods: "to judge the
// optimization quality of heuristics" [MT98, Sec 9.2.2].  This ablation
// compares sifting, window permutation, and random restarts against the
// exact FS optimum and the pessimal ordering on structured and random
// functions.

#include <cinttypes>
#include <cstdio>
#include <numeric>

#include "core/minimize.hpp"
#include "reorder/annealing.hpp"
#include "reorder/baselines.hpp"
#include "reorder/exact_window.hpp"
#include "tt/function_zoo.hpp"
#include "util/rng.hpp"

int main() {
  using namespace ovo;
  util::Xoshiro256 rng(12);

  struct Case {
    const char* name;
    tt::TruthTable t;
  };
  std::vector<Case> cases;
  cases.push_back({"pair_sum(4)", tt::pair_sum(4)});
  cases.push_back({"hwb(8)", tt::hidden_weighted_bit(8)});
  cases.push_back({"mult_mid(8)", tt::multiplier_middle_bit(8)});
  cases.push_back({"adder_carry(8)", tt::adder_carry(8)});
  cases.push_back({"isa(8)", tt::indirect_storage_access(8)});
  cases.push_back({"random(8)", tt::random_function(8, rng)});
  cases.push_back({"read_once(8)", tt::random_read_once(8, rng)});

  std::printf("Heuristic quality vs exact optimum (internal nodes)\n\n");
  std::printf("%-16s %8s %8s %8s %8s %8s %8s %8s %8s\n", "function",
              "exact", "sift", "window3", "exwin4", "anneal", "random20",
              "identity", "worst*");
  std::printf("  (*worst = pessimal order found by brute force, n <= 8)\n");

  bool heuristics_sound = true;
  for (const Case& c : cases) {
    const int n = c.t.num_vars();
    const std::uint64_t exact =
        core::fs_minimize(c.t).min_internal_nodes;
    std::vector<int> id(static_cast<std::size_t>(n));
    std::iota(id.begin(), id.end(), 0);
    const std::uint64_t s = reorder::sift(c.t, id).internal_nodes;
    const std::uint64_t w =
        reorder::window_permute(c.t, id, 3).internal_nodes;
    const std::uint64_t ew =
        reorder::exact_window(c.t, id, 4).internal_nodes;
    const std::uint64_t sa =
        reorder::simulated_annealing(c.t, id, reorder::AnnealOptions{}, rng)
            .internal_nodes;
    const std::uint64_t r =
        reorder::random_restart(c.t, 20, rng).internal_nodes;
    const std::uint64_t ident = core::diagram_size_for_order(c.t, id);
    const std::uint64_t worst =
        reorder::brute_force_minimize(c.t).worst_internal_nodes;
    heuristics_sound &= s >= exact && w >= exact && r >= exact &&
                        ew >= exact && sa >= exact;
    std::printf("%-16s %8" PRIu64 " %8" PRIu64 " %8" PRIu64 " %8" PRIu64
                " %8" PRIu64 " %8" PRIu64 " %8" PRIu64 " %8" PRIu64 "\n",
                c.name, exact, s, w, ew, sa, r, ident, worst);
  }
  std::printf("\nresult: %s\n",
              heuristics_sound
                  ? "no heuristic beat the exact optimum (sound); gaps "
                    "show why exact methods matter"
                  : "MISMATCH: heuristic reported below exact optimum");
  return heuristics_sound ? 0 : 1;
}
