// Reproduces Fig. 1 of the paper: the pair-sum function
//   f = x1 x2 + x3 x4 + ... + x_{2m-1} x_{2m}
// has a (2m+2)-node OBDD (terminals included) under the natural ordering
// and a 2^{m+1}-node OBDD under the interleaved ordering.  The figure's
// concrete instance is m = 3 (sizes 8 vs 16).
//
// Columns: measured sizes from the chain-compaction oracle, the exact FS
// optimum, and the paper's closed forms.

#include <cinttypes>
#include <cstdio>

#include "core/minimize.hpp"
#include "tt/function_zoo.hpp"

int main() {
  using namespace ovo;
  std::printf("Fig. 1 reproduction: pair-sum OBDD sizes (terminals included)\n");
  std::printf("paper: natural order -> 2m+2 nodes, interleaved -> 2^{m+1}\n\n");
  std::printf("%4s %4s %14s %12s %18s %14s %12s\n", "m", "n",
              "natural(meas)", "paper 2m+2", "interleaved(meas)",
              "paper 2^{m+1}", "FS optimum");

  bool all_match = true;
  for (int m = 2; m <= 10; ++m) {
    const tt::TruthTable f = tt::pair_sum(m);
    const std::uint64_t natural =
        core::diagram_size_for_order(f, tt::pair_sum_natural_order(m)) + 2;
    const std::uint64_t interleaved =
        core::diagram_size_for_order(f, tt::pair_sum_interleaved_order(m)) +
        2;
    const std::uint64_t paper_nat = 2 * static_cast<std::uint64_t>(m) + 2;
    const std::uint64_t paper_int = std::uint64_t{1} << (m + 1);
    all_match &= (natural == paper_nat) && (interleaved == paper_int);

    char fs_buf[32] = "-";
    if (2 * m <= 12) {  // FS is O*(3^n); keep the sweep quick
      const auto fs = core::fs_minimize(f);
      std::snprintf(fs_buf, sizeof(fs_buf), "%" PRIu64,
                    fs.min_internal_nodes + 2);
      all_match &= (fs.min_internal_nodes + 2 == paper_nat);
    }
    std::printf("%4d %4d %14" PRIu64 " %12" PRIu64 " %18" PRIu64
                " %14" PRIu64 " %12s\n",
                m, 2 * m, natural, paper_nat, interleaved, paper_int, fs_buf);
  }
  std::printf("\nresult: %s\n",
              all_match ? "all sizes match the paper exactly"
                        : "MISMATCH against the paper");
  return all_match ? 0 : 1;
}
