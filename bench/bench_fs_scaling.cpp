// Theorem 5 claim: algorithm FS runs in O*(3^n), against the trivial
// O*(n! 2^n) brute force.  We measure (a) table cells processed and
// (b) wall-clock time for n = 2..N, fit the growth base, and compare with
// the analytic operation counts.

#include <cinttypes>
#include <cstdio>

#include "core/minimize.hpp"
#include "ds/unique_table.hpp"
#include "quantum/analysis.hpp"
#include "reorder/baselines.hpp"
#include "tt/function_zoo.hpp"
#include "util/fit.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main() {
  using namespace ovo;
  util::Xoshiro256 rng(2024);

  std::printf("Theorem 5 + Remark 1 reproduction: FS time AND space vs "
              "brute force\n");
  std::printf("(random functions; cells = table cells)\n\n");
  std::printf("%3s %14s %14s %12s %12s %12s %16s %12s\n", "n", "FS cells",
              "FS cells(pred)", "peak cells", "peak(pred)", "FS time(s)",
              "brute cells(prd)", "brute t(s)");

  std::vector<int> ns;
  std::vector<double> fs_cells, fs_space;
  ds::TableStats dedup_total;
  const int kMaxN = 13;
  const int kMaxBruteN = 8;
  bool space_matches = true;
  for (int n = 2; n <= kMaxN; ++n) {
    const tt::TruthTable t = tt::random_function(n, rng);
    util::Timer timer;
    const core::MinimizeResult r = core::fs_minimize(t);
    const double fs_time = timer.seconds();

    double brute_time = -1.0;
    if (n <= kMaxBruteN) {
      timer.reset();
      (void)reorder::brute_force_minimize(t);
      brute_time = timer.seconds();
    }

    const double peak_pred = quantum::fs_peak_cells(n);
    space_matches &=
        static_cast<double>(r.ops.peak_cells) == peak_pred;
    ns.push_back(n);
    fs_cells.push_back(static_cast<double>(r.ops.table_cells));
    fs_space.push_back(static_cast<double>(r.ops.peak_cells));
    dedup_total += r.ops.dedup;
    std::printf("%3d %14" PRIu64 " %14.0f %12" PRIu64 " %12.0f %12.4f "
                "%16.0f %12s\n",
                n, r.ops.table_cells, quantum::fs_total_cells(n),
                r.ops.peak_cells, peak_pred, fs_time,
                quantum::brute_force_total_cells(n),
                brute_time < 0 ? "-" : std::to_string(brute_time).c_str());
  }

  // Fit growth bases on the tail (small n is polluted by constants).
  std::vector<int> tail_n(ns.end() - 6, ns.end());
  std::vector<double> tail_cells(fs_cells.end() - 6, fs_cells.end());
  std::vector<double> tail_space(fs_space.end() - 6, fs_space.end());
  const util::ExponentFit cell_fit = util::fit_exponent(tail_n, tail_cells);
  const util::ExponentFit space_fit =
      util::fit_exponent(tail_n, tail_space);
  std::printf("\nmeasured FS cell-growth base: %.3f  (paper: 3.0, brute "
              "force base grows superexponentially)\n",
              cell_fit.base);
  std::printf("measured FS peak-space base : %.3f  (Remark 1: same order "
              "as time)\n",
              space_fit.base);
  std::printf("fit R^2 (log scale): time %.4f, space %.4f\n",
              cell_fit.r_squared, space_fit.r_squared);
  std::printf("measured peak space == closed form on every n: %s\n",
              space_matches ? "yes" : "NO");
  std::printf("\nCOMPACT dedup tables (ovo::ds, all runs): lookups=%" PRIu64
              "  hit rate=%.3f  avg probe=%.2f  resizes=%" PRIu64 "\n",
              dedup_total.lookups, dedup_total.hit_rate(),
              dedup_total.avg_probe_length(), dedup_total.resizes);

  const bool shape_ok = cell_fit.base > 2.6 && cell_fit.base < 3.4 &&
                        space_fit.base > 2.5 && space_fit.base < 3.4 &&
                        space_matches;
  std::printf("result: %s\n",
              shape_ok
                  ? "FS time and space both scale as ~3^n as claimed"
                  : "MISMATCH: FS growth base off");
  return shape_ok ? 0 : 1;
}
