// Theorem 5 claim: algorithm FS runs in O*(3^n), against the trivial
// O*(n! 2^n) brute force.  We measure (a) table cells processed and
// (b) wall-clock time for n = 2..N, fit the growth base, and compare with
// the analytic operation counts.
//
// Flags: --threads N (re-time every FS run with N pool threads and report
// the speedup over the serial run; results must agree exactly) and
// --json <path> (emit the per-n rows as a JSON array).
//
// Every ungoverned row also carries a bound-pruned ablation: the same
// function re-run with ExecPolicy.prune = kBounds and a sift-seeded
// incumbent.  The pruned run must reproduce the dense optimum and order
// bit-exactly; the row reports states_pruned / prune_ratio and the
// measured sparse peak against peak_cells_dense_equiv (the closed-form
// dense peak from quantum::fs_peak_cells).  Random functions prune
// weakly at large n, so two structured functions (hwb, adder_carry) are
// ablated at the largest n as well.
//
// Budget flags (--timeout-ms / --node-limit / --mem-limit-mb /
// --work-limit) run each n through the governed minimize_auto ladder with
// a fresh budget instead of the raw DP: every row then reports its
// Outcome plus the shared cost-oracle counters (queries / evals /
// memo hits, also in --json), the growth-fit checks are skipped (a
// tripped run no longer measures the DP), and the bench demonstrates
// bounded degradation instead.

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <optional>
#include <string>

#include "core/minimize.hpp"
#include "ds/unique_table.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/exec_policy.hpp"
#include "parallel/task_graph.hpp"
#include "quantum/analysis.hpp"
#include "reorder/baselines.hpp"
#include "reorder/minimize_auto.hpp"
#include "rt/budget.hpp"
#include "rt/checkpoint.hpp"
#include "tt/function_zoo.hpp"
#include "util/fit.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

void appendf(std::string& s, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  s += buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ovo;
  util::Xoshiro256 rng(2024);

#if OVO_TRACE_ENABLED
  // Timing-fidelity guard: span collection on the DP hot path would
  // contaminate the growth fits, so the bench never runs traced.
  if (obs::trace::enabled()) {
    std::fprintf(stderr,
                 "note: trace collection was enabled; disabling for the "
                 "timed sweep\n");
    obs::trace::disable();
  }
#endif

  int bench_threads = 1;
  std::string json_path;
  rt::Budget budget;
  par::PruneMode gov_prune = par::PruneMode::kOff;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      bench_threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--prune") == 0 && i + 1 < argc) {
      // Governed mode only: the ungoverned sweep always A/Bs dense
      // against the bound-pruned engine, so the flag has nothing to add
      // there.
      const std::string mode = argv[++i];
      if (mode == "bounds") {
        gov_prune = par::PruneMode::kBounds;
      } else if (mode != "off") {
        std::fprintf(stderr, "--prune takes 'off' or 'bounds'\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0 && i + 1 < argc) {
      budget.deadline_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--node-limit") == 0 && i + 1 < argc) {
      budget.node_limit = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--mem-limit-mb") == 0 && i + 1 < argc) {
      budget.bytes_limit =
          std::strtoull(argv[++i], nullptr, 10) * 1024 * 1024;
    } else if (std::strcmp(argv[i], "--work-limit") == 0 && i + 1 < argc) {
      budget.work_limit = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: bench_fs_scaling [--threads N] [--json path] "
                   "[--prune off|bounds] [--timeout-ms N] [--node-limit N] "
                   "[--mem-limit-mb N] [--work-limit N]\n");
      return 2;
    }
  }
  par::ExecPolicy exec;
  exec.num_threads = bench_threads;
  const int resolved_threads = exec.resolved_threads();

  if (!budget.unlimited()) {
    // Governed mode: every n runs the degradation ladder under a fresh
    // copy of the budget; rows report why each run stopped.
    util::Xoshiro256 grng(2024);
    std::printf("Governed FS (minimize_auto ladder, fresh budget per n)\n\n");
    std::printf("%3s %12s %8s %6s %10s %14s %9s %9s %12s\n", "n", "nodes",
                "optimal", "layers", "outcome", "work units", "queries",
                "memo hit", "time(s)");
    // Atomic artifact: the rows stream to a temp file and only a
    // committed run renames it over json_path, so a killed bench never
    // leaves a torn JSON array.
    std::optional<rt::AtomicFileWriter> writer;
    std::FILE* out = nullptr;
    if (!json_path.empty()) {
      try {
        writer.emplace(json_path);
      } catch (const rt::CheckpointError& e) {
        std::fprintf(stderr, "cannot write '%s': %s\n", json_path.c_str(),
                     e.what());
        return 2;
      }
      out = writer->stream();
      std::fprintf(out, "[\n");
    }
    const int kGovMaxN = 13;
    for (int n = 2; n <= kGovMaxN; ++n) {
      const tt::TruthTable t = tt::random_function(n, grng);
      reorder::AutoMinimizeOptions opt;
      opt.exec = exec;
      opt.exec.prune = gov_prune;
      util::Timer timer;
      const auto r = reorder::minimize_auto(t, budget, opt);
      const double secs = timer.seconds();
      // The heuristic stages (sift + restarts) share one memoized cost
      // oracle, so revisited orders show up as memo hits rather than
      // repeated chain evaluations.
      const reorder::OracleStats& os = r.value.oracle;
      const par::SchedStats& ss = r.value.sched;
      std::printf("%3d %12" PRIu64 " %8s %6d %10s %14" PRIu64 " %9" PRIu64
                  " %9" PRIu64 " %12.4f\n",
                  n, r.value.internal_nodes, r.value.optimal ? "yes" : "no",
                  r.value.dp_layers_completed, rt::outcome_name(r.outcome),
                  r.stats.work_units, os.queries, os.memo_hits, secs);
      if (out != nullptr) {
        // Every counter renders through the obs shared serializer, so
        // the row's keys are the metric table's canonical json_keys —
        // byte-identical to the CLI's --json fields.
        obs::Ledger l;
        os.to_ledger(l);           // oracle counters + heuristic-stage ops
        r.value.ops.to_ledger(l);  // DP/salvage ledger (prune included)
        ss.to_ledger(l);
        l.record(obs::Metric::kRtWorkCharged, r.stats.work_units);
        std::string row = "  {";
        appendf(row, "\"n\":%d", n);
        appendf(row, ",\"nodes\":%" PRIu64, r.value.internal_nodes);
        appendf(row, ",\"optimal\":%s",
                r.value.optimal ? "true" : "false");
        appendf(row, ",\"dp_layers\":%d", r.value.dp_layers_completed);
        obs::append_json_str(row, "outcome", rt::outcome_name(r.outcome));
        obs::append_metric_json(row, l, obs::Metric::kRtWorkCharged);
        obs::append_counters_json(row, l);
        appendf(row, ",\"seconds\":%.6f", secs);
        obs::append_metrics_json(
            row, l,
            {obs::Metric::kSchedTasks, obs::Metric::kSchedChunks,
             obs::Metric::kSchedReadyHwm, obs::Metric::kSchedOverlapTasks,
             obs::Metric::kSchedOverlapNs, obs::Metric::kSchedBarrierWaitNs,
             obs::Metric::kSchedPrunedChunks});
        obs::append_run_info_json(row, resolved_threads);
        row += "}";
        std::fprintf(out, "%s%s\n", row.c_str(),
                     n < kGovMaxN ? "," : "");
      }
    }
    if (out != nullptr) {
      std::fprintf(out, "]\n");
      writer->commit();
      std::printf("wrote %s\n", json_path.c_str());
    }
    std::printf("result: governed runs completed (growth fits skipped "
                "under a budget)\n");
    return 0;
  }

  std::printf("Theorem 5 + Remark 1 reproduction: FS time AND space vs "
              "brute force\n");
  std::printf("(random functions; cells = table cells)\n\n");
  std::printf("%3s %14s %14s %12s %12s %12s %16s %12s\n", "n", "FS cells",
              "FS cells(pred)", "peak cells", "peak(pred)", "FS time(s)",
              "brute cells(prd)", "brute t(s)");

  std::vector<int> ns;
  std::vector<double> fs_cells, fs_space;
  std::vector<double> serial_times, threaded_times, barrier_times;
  std::vector<par::SchedStats> pipe_sched, barrier_sched;
  std::vector<double> pruned_times;
  std::vector<core::PruneStats> prune_rows;
  std::vector<std::uint64_t> pruned_peaks;
  ds::TableStats dedup_total;
  const int kMaxN = 13;
  const int kMaxBruteN = 8;
  bool space_matches = true;
  bool threads_match = true;
  bool prune_matches = true;

  // Bound-pruned ablation: sift-seeded incumbent, sparse layers, same
  // thread count as the threaded dense run.  Must reproduce `dense`
  // bit-exactly.
  par::ExecPolicy pruned_exec = exec;
  pruned_exec.prune = par::PruneMode::kBounds;
  const auto run_pruned = [&](const tt::TruthTable& t,
                              const core::MinimizeResult& dense,
                              double* secs) {
    std::vector<int> id(static_cast<std::size_t>(t.num_vars()));
    std::iota(id.begin(), id.end(), 0);
    const std::uint64_t ub = reorder::sift(t, id).internal_nodes;
    util::Timer timer;
    const core::MinimizeResult rp =
        core::fs_minimize(t, core::DiagramKind::kBdd, pruned_exec, ub);
    *secs = timer.seconds();
    prune_matches &= rp.min_internal_nodes == dense.min_internal_nodes &&
                     rp.order_root_first == dense.order_root_first;
    return rp;
  };

  for (int n = 2; n <= kMaxN; ++n) {
    const tt::TruthTable t = tt::random_function(n, rng);
    util::Timer timer;
    const core::MinimizeResult r = core::fs_minimize(t);
    const double fs_time = timer.seconds();

    double threaded_time = fs_time;
    double barrier_time = fs_time;
    par::SchedStats sp, sb;
    if (resolved_threads > 1) {
      // A/B the two engines: the pipelined TaskGraph DP (the default)
      // against the PR 2 per-layer-barrier engine (pipeline = false).
      // Both must reproduce the serial results bit-exactly; the sched
      // deltas expose barrier-wait vs. cross-layer-overlap time.
      par::SchedStats snap = par::sched_stats();
      timer.reset();
      const core::MinimizeResult rt =
          core::fs_minimize(t, core::DiagramKind::kBdd, exec);
      threaded_time = timer.seconds();
      sp = par::sched_stats() - snap;
      par::ExecPolicy no_pipe = exec;
      no_pipe.pipeline = false;
      snap = par::sched_stats();
      timer.reset();
      const core::MinimizeResult rb =
          core::fs_minimize(t, core::DiagramKind::kBdd, no_pipe);
      barrier_time = timer.seconds();
      sb = par::sched_stats() - snap;
      threads_match &=
          rt.min_internal_nodes == r.min_internal_nodes &&
          rt.order_root_first == r.order_root_first &&
          rt.ops.table_cells == r.ops.table_cells &&
          rb.min_internal_nodes == r.min_internal_nodes &&
          rb.order_root_first == r.order_root_first &&
          rb.ops.table_cells == r.ops.table_cells;
    }
    serial_times.push_back(fs_time);
    threaded_times.push_back(threaded_time);
    barrier_times.push_back(barrier_time);
    pipe_sched.push_back(sp);
    barrier_sched.push_back(sb);

    double brute_time = -1.0;
    if (n <= kMaxBruteN) {
      timer.reset();
      (void)reorder::brute_force_minimize(t);
      brute_time = timer.seconds();
    }

    double pruned_time = 0.0;
    const core::MinimizeResult rp = run_pruned(t, r, &pruned_time);
    pruned_times.push_back(pruned_time);
    prune_rows.push_back(rp.ops.prune);
    pruned_peaks.push_back(rp.ops.peak_cells);

    const double peak_pred = quantum::fs_peak_cells(n);
    space_matches &=
        static_cast<double>(r.ops.peak_cells) == peak_pred;
    ns.push_back(n);
    fs_cells.push_back(static_cast<double>(r.ops.table_cells));
    fs_space.push_back(static_cast<double>(r.ops.peak_cells));
    dedup_total += r.ops.dedup;
    std::printf("%3d %14" PRIu64 " %14.0f %12" PRIu64 " %12.0f %12.4f "
                "%16.0f %12s\n",
                n, r.ops.table_cells, quantum::fs_total_cells(n),
                r.ops.peak_cells, peak_pred, fs_time,
                quantum::brute_force_total_cells(n),
                brute_time < 0 ? "-" : std::to_string(brute_time).c_str());
  }

  // Fit growth bases on the tail (small n is polluted by constants).
  std::vector<int> tail_n(ns.end() - 6, ns.end());
  std::vector<double> tail_cells(fs_cells.end() - 6, fs_cells.end());
  std::vector<double> tail_space(fs_space.end() - 6, fs_space.end());
  const util::ExponentFit cell_fit = util::fit_exponent(tail_n, tail_cells);
  const util::ExponentFit space_fit =
      util::fit_exponent(tail_n, tail_space);
  std::printf("\nmeasured FS cell-growth base: %.3f  (paper: 3.0, brute "
              "force base grows superexponentially)\n",
              cell_fit.base);
  std::printf("measured FS peak-space base : %.3f  (Remark 1: same order "
              "as time)\n",
              space_fit.base);
  std::printf("fit R^2 (log scale): time %.4f, space %.4f\n",
              cell_fit.r_squared, space_fit.r_squared);
  std::printf("measured peak space == closed form on every n: %s\n",
              space_matches ? "yes" : "NO");
  std::printf("\nCOMPACT dedup tables (ovo::ds, all runs): lookups=%" PRIu64
              "  hit rate=%.3f  avg probe=%.2f  resizes=%" PRIu64 "\n",
              dedup_total.lookups, dedup_total.hit_rate(),
              dedup_total.avg_probe_length(), dedup_total.resizes);

  // Bound-pruned ablation.  Random functions have near-worst-case
  // ordering spread, so structured functions join at the largest n to
  // show the sparse layers actually shrinking the resident set.
  struct PruneRow {
    std::string function;
    int n;
    double seconds;
    core::PruneStats p;
    std::uint64_t peak_cells;
  };
  std::vector<PruneRow> ablation;
  for (std::size_t i = 0; i < ns.size(); ++i)
    ablation.push_back({"random", ns[i], pruned_times[i], prune_rows[i],
                        pruned_peaks[i]});
  {
    struct Structured {
      const char* name;
      tt::TruthTable t;
    };
    const Structured structured[] = {
        {"hwb", tt::hidden_weighted_bit(kMaxN)},
        // adder_carry needs an even width; 12 is its largest n <= kMaxN.
        {"adder_carry", tt::adder_carry(kMaxN - 1)},
    };
    for (const Structured& s : structured) {
      const core::MinimizeResult dense = core::fs_minimize(s.t);
      double secs = 0.0;
      const core::MinimizeResult rp = run_pruned(s.t, dense, &secs);
      ablation.push_back({s.name, s.t.num_vars(), secs, rp.ops.prune,
                          rp.ops.peak_cells});
    }
  }

  std::printf("\nBound-pruned FS* (sift-seeded incumbent, sparse layers; "
              "dense equivalents in parentheses)\n");
  std::printf("%-12s %3s %12s %12s %9s %8s %14s %18s %10s\n", "function",
              "n", "states gen", "pruned+dead", "surviving", "prune%",
              "sparse cells", "peak (dense eq.)", "time(s)");
  bool prune_bites_at_max_n = false;
  for (const PruneRow& row : ablation) {
    const double dense_peak = quantum::fs_peak_cells(row.n);
    std::printf("%-12s %3d %12" PRIu64 " %12" PRIu64 " %9" PRIu64
                " %7.2f%% %14" PRIu64 " %9" PRIu64 " (%8.0f) %10.4f\n",
                row.function.c_str(), row.n, row.p.states_enumerated(),
                row.p.states_pruned + row.p.states_dead,
                row.p.states_surviving, 100.0 * row.p.prune_ratio(),
                row.p.sparse_cells, row.peak_cells, dense_peak, row.seconds);
    if (row.n == kMaxN) {
      prune_bites_at_max_n |=
          row.p.prune_ratio() > 0.0 &&
          static_cast<double>(row.peak_cells) < dense_peak;
    }
  }
  std::printf("pruned runs identical to dense: %s;  prune engaged at "
              "n=%d (ratio > 0, peak below dense): %s\n",
              prune_matches ? "yes" : "NO", kMaxN,
              prune_bites_at_max_n ? "yes" : "NO");

  if (resolved_threads > 1) {
    std::printf("\nparallel FS (%d threads): largest-n speedup %.2fx, "
                "results identical to serial: %s\n",
                resolved_threads,
                serial_times.back() / threaded_times.back(),
                threads_match ? "yes" : "NO");
    par::SchedStats sp_total, sb_total;
    for (std::size_t i = 0; i < pipe_sched.size(); ++i) {
      sp_total += pipe_sched[i];
      sb_total += barrier_sched[i];
    }
    std::printf("scheduler (pipelined):  tasks=%" PRIu64 " overlap_tasks=%"
                PRIu64 " overlap_ms=%.2f barrier_wait_ms=%.2f\n",
                sp_total.tasks, sp_total.overlap_tasks,
                sp_total.overlap_ns / 1e6, sp_total.barrier_wait_ns / 1e6);
    std::printf("scheduler (barrier):    tasks=%" PRIu64 " overlap_tasks=%"
                PRIu64 " overlap_ms=%.2f barrier_wait_ms=%.2f\n",
                sb_total.tasks, sb_total.overlap_tasks,
                sb_total.overlap_ns / 1e6, sb_total.barrier_wait_ns / 1e6);
    std::printf("cross-layer overlap engaged: %s; barrier-wait reduced vs "
                "PR 2 engine: %s\n",
                sp_total.overlap_tasks > 0 ? "yes" : "NO",
                sp_total.barrier_wait_ns <= sb_total.barrier_wait_ns
                    ? "yes"
                    : "no");
  }

  if (!json_path.empty()) {
    // Same crash-atomic discipline as the governed path: commit or
    // nothing.
    std::optional<rt::AtomicFileWriter> writer;
    try {
      writer.emplace(json_path);
    } catch (const rt::CheckpointError& e) {
      std::fprintf(stderr, "cannot write '%s': %s\n", json_path.c_str(),
                   e.what());
      return 2;
    }
    std::FILE* out = writer->stream();
    std::fprintf(out, "[\n");
    // The bound-pruning surface of a row, keyed by the metric table.
    const auto append_prune_json = [](std::string& row,
                                      const core::PruneStats& p) {
      obs::Ledger l;
      p.to_ledger(l);
      obs::append_metrics_json(
          row, l,
          {obs::Metric::kFsPruneUpperBound, obs::Metric::kFsPruneGenerated,
           obs::Metric::kFsPrunePruned, obs::Metric::kFsPruneDead,
           obs::Metric::kFsPruneSurviving});
      obs::append_json_f64(row, "prune_ratio", p.prune_ratio());
      obs::append_metrics_json(row, l,
                               {obs::Metric::kFsPruneSparseCells,
                                obs::Metric::kFsPruneDenseCells});
    };
    for (std::size_t i = 0; i < ns.size(); ++i) {
      obs::Ledger l;
      pipe_sched[i].to_ledger(l);
      l.record(obs::Metric::kFsTableCells,
               static_cast<std::uint64_t>(fs_cells[i]));
      std::string row = "  {";
      appendf(row, "\"n\":%d", ns[i]);
      obs::append_json_str(row, "function", "random");
      appendf(row, ",\"seconds_serial\":%.6f", serial_times[i]);
      appendf(row, ",\"seconds_threads\":%.6f", threaded_times[i]);
      appendf(row, ",\"speedup\":%.4f",
              serial_times[i] / threaded_times[i]);
      obs::append_metric_json(row, l, obs::Metric::kFsTableCells);
      appendf(row, ",\"seconds_barrier_engine\":%.6f", barrier_times[i]);
      obs::append_metrics_json(
          row, l,
          {obs::Metric::kSchedTasks, obs::Metric::kSchedReadyHwm,
           obs::Metric::kSchedOverlapTasks, obs::Metric::kSchedOverlapNs,
           obs::Metric::kSchedBarrierWaitNs});
      appendf(row, ",\"sched_barrier_wait_ns_barrier_engine\":%" PRIu64,
              barrier_sched[i].barrier_wait_ns);
      appendf(row, ",\"seconds_pruned\":%.6f", pruned_times[i]);
      append_prune_json(row, prune_rows[i]);
      appendf(row, ",\"peak_cells_pruned\":%" PRIu64, pruned_peaks[i]);
      appendf(row, ",\"peak_cells_dense_equiv\":%.0f",
              quantum::fs_peak_cells(ns[i]));
      obs::append_run_info_json(row, resolved_threads);
      std::fprintf(out, "%s},\n", row.c_str());
    }
    // The structured-function ablation rows carry only the pruning
    // surface; scaling-fit consumers key on "function" == "random".
    for (std::size_t i = ns.size(); i < ablation.size(); ++i) {
      const PruneRow& prow = ablation[i];
      std::string row = "  {";
      appendf(row, "\"n\":%d", prow.n);
      obs::append_json_str(row, "function", prow.function.c_str());
      appendf(row, ",\"seconds_pruned\":%.6f", prow.seconds);
      append_prune_json(row, prow.p);
      appendf(row, ",\"peak_cells_pruned\":%" PRIu64, prow.peak_cells);
      appendf(row, ",\"peak_cells_dense_equiv\":%.0f",
              quantum::fs_peak_cells(prow.n));
      obs::append_run_info_json(row, resolved_threads);
      std::fprintf(out, "%s}%s\n", row.c_str(),
                   i + 1 < ablation.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
    writer->commit();
    std::printf("wrote %s\n", json_path.c_str());
  }

  const bool shape_ok = cell_fit.base > 2.6 && cell_fit.base < 3.4 &&
                        space_fit.base > 2.5 && space_fit.base < 3.4 &&
                        space_matches && threads_match && prune_matches &&
                        prune_bites_at_max_n;
  std::printf("result: %s\n",
              shape_ok
                  ? "FS time and space both scale as ~3^n as claimed; "
                    "bound pruning is exact and engages at the largest n"
                  : "MISMATCH: FS growth base off, or pruning diverged "
                    "from the dense optimum");
  return shape_ok ? 0 : 1;
}
