// Remark 2 / Appendix D claim: the two-line modification gives a minimum
// ZDD (and the value-table variant a minimum MTBDD) at the same
// complexity.  We verify exact ZDD/MTBDD minima against brute force on
// sparse families and multi-valued functions, and show the ZDD advantage
// on sparse inputs that motivates Minato's variant.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <numeric>

#include "core/minimize.hpp"
#include "reorder/baselines.hpp"
#include "tt/function_zoo.hpp"
#include "util/rng.hpp"

int main() {
  using namespace ovo;
  util::Xoshiro256 rng(31);

  std::printf("ZDD / MTBDD exact minimization (Remark 2, Appendix D)\n\n");
  std::printf("sparse families, n = 8 (sizes are internal nodes):\n");
  std::printf("%8s %12s %12s %12s %12s\n", "ones", "ZDD opt", "BDD opt",
              "ZDD natural", "advantage");
  bool zdd_wins_overall = false;
  for (const std::uint64_t ones : {2ull, 4ull, 8ull, 16ull, 32ull}) {
    const tt::TruthTable t = tt::random_sparse_function(8, ones, rng);
    const auto z = core::fs_minimize(t, core::DiagramKind::kZdd);
    const auto b = core::fs_minimize(t, core::DiagramKind::kBdd);
    std::vector<int> id(8);
    std::iota(id.begin(), id.end(), 0);
    const std::uint64_t z_nat =
        core::diagram_size_for_order(t, id, core::DiagramKind::kZdd);
    zdd_wins_overall |= z.min_internal_nodes < b.min_internal_nodes;
    std::printf("%8" PRIu64 " %12" PRIu64 " %12" PRIu64 " %12" PRIu64
                " %11.2fx\n",
                ones, z.min_internal_nodes, b.min_internal_nodes, z_nat,
                static_cast<double>(b.min_internal_nodes) /
                    std::max<std::uint64_t>(1, z.min_internal_nodes));
  }

  // Exactness check against brute force on small instances.
  std::printf("\nexactness vs brute force (n = 6, 10 random sparse "
              "functions):\n");
  bool zdd_exact = true;
  for (int trial = 0; trial < 10; ++trial) {
    const tt::TruthTable t = tt::random_sparse_function(6, 5, rng);
    const auto z = core::fs_minimize(t, core::DiagramKind::kZdd);
    const auto bf =
        reorder::brute_force_minimize(t, core::DiagramKind::kZdd);
    zdd_exact &= z.min_internal_nodes == bf.internal_nodes;
  }
  std::printf("  ZDD FS == ZDD brute force on all trials: %s\n",
              zdd_exact ? "yes" : "NO");

  bool mtbdd_exact = true;
  for (int trial = 0; trial < 5; ++trial) {
    const int n = 5;
    std::vector<std::int64_t> values(32);
    for (auto& v : values) v = static_cast<std::int64_t>(rng.below(3));
    const auto fs = core::fs_minimize_mtbdd(values, n);
    std::uint64_t best = ~std::uint64_t{0};
    std::vector<int> order{0, 1, 2, 3, 4};
    do {
      best = std::min(
          best, core::diagram_size_for_order_values(values, n, order));
    } while (std::next_permutation(order.begin(), order.end()));
    mtbdd_exact &= fs.min_internal_nodes == best;
  }
  std::printf("  MTBDD FS == MTBDD brute force on all trials: %s\n",
              mtbdd_exact ? "yes" : "NO");

  const bool ok = zdd_exact && mtbdd_exact && zdd_wins_overall;
  std::printf("\nresult: %s\n",
              ok ? "ZDD/MTBDD minimization exact; ZDD advantage on sparse "
                   "inputs confirmed"
                 : "MISMATCH in ZDD/MTBDD reproduction");
  return ok ? 0 : 1;
}
