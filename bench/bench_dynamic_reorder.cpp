// Dynamic (in-place, DAG-level) reordering vs the paper's exact targets:
// the production mechanism real BDD packages use, judged — as the paper's
// introduction prescribes — against the exact optimum.  Also measures the
// cost profile of adjacent level swaps.

#include <cinttypes>
#include <cstdio>
#include <numeric>

#include "bdd/dynamic_reorder.hpp"
#include "core/minimize.hpp"
#include "tt/function_zoo.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main() {
  using namespace ovo;
  util::Xoshiro256 rng(17);

  struct Case {
    const char* name;
    tt::TruthTable t;
    std::vector<int> start_order;
  };
  std::vector<Case> cases;
  {
    std::vector<int> id10(10);
    std::iota(id10.begin(), id10.end(), 0);
    cases.push_back({"pair_sum(5) interleaved", tt::pair_sum(5),
                     tt::pair_sum_interleaved_order(5)});
    cases.push_back({"hwb(10)", tt::hidden_weighted_bit(10), id10});
    cases.push_back({"adder_carry(10)", tt::adder_carry(10), id10});
    cases.push_back({"mult_mid(10)", tt::multiplier_middle_bit(10), id10});
    cases.push_back({"random(10)", tt::random_function(10, rng), id10});
  }

  std::printf("In-place DAG sifting vs exact optimum\n\n");
  std::printf("%-24s %8s %8s %8s %8s %10s %10s\n", "function", "start",
              "sifted", "exact", "gap", "swaps", "time(ms)");
  bool sound = true;
  for (const Case& c : cases) {
    bdd::Manager m(c.t.num_vars(), c.start_order);
    const bdd::NodeId root = m.from_truth_table(c.t);
    util::Timer timer;
    const bdd::SiftResult s = bdd::sift_in_place(m, {root});
    const double ms = timer.millis();
    const std::uint64_t exact =
        core::fs_minimize(c.t).min_internal_nodes;
    sound &= s.final_nodes >= exact && s.final_nodes <= s.initial_nodes;
    std::printf("%-24s %8" PRIu64 " %8" PRIu64 " %8" PRIu64 " %7.2fx %10"
                PRIu64 " %10.1f\n",
                c.name, s.initial_nodes, s.final_nodes, exact,
                exact == 0 ? 1.0
                           : static_cast<double>(s.final_nodes) /
                                 static_cast<double>(exact),
                s.swaps, ms);
  }

  std::printf("\nresult: %s\n",
              sound ? "dynamic sifting sound; exact optimum quantifies "
                      "its remaining gap"
                    : "MISMATCH: sifting left the sound envelope");
  return sound ? 0 : 1;
}
