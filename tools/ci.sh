#!/usr/bin/env bash
# Single-entry CI gate.  Composes the verification sweep:
#
#   1. tools/verify.sh (full): tier-1 tests on the default preset, then
#      the whole suite again under ASan+UBSan and under TSan (the
#      task-graph scheduler and the pipelined FS* DP are exercised by
#      task_graph_test / parallel_determinism_test / parallel_cancel_test
#      on every preset), plus the README strategy-table drift check —
#      the registry is the source of truth and drift fails the gate —
#      plus the -DOVO_TRACE=OFF build's nm check that the span macros
#      compile out of the CLI entirely.
#   2. tools/verify.sh --quick: a governed smoke run of both scaling
#      benches (the FS bench under --prune bounds), asserting the JSON
#      rows carry the unified oracle ledger, the ovo::par scheduler
#      counters, and the bound-pruning ledger (states_pruned /
#      prune_ratio), plus the `ovo order --prune bounds` bit-identity
#      guard against the dense default, plus the checkpoint round-trip
#      smoke: interrupt mid-DP, resume, require byte-identical JSON, and
#      require a corrupted snapshot to be rejected with exit 3, plus the
#      `ovo order --trace` Chrome trace-event smoke, plus the fuzz
#      frontier smoke (each OVO_FUZZ target: fixed-seed random inputs +
#      regression-corpus replay) and the trimmed CLI chaos sweep
#      (tools/chaos.sh --quick: fault-injected runs must exit with typed
#      codes, leak no temp file, and resume byte-identically).  The full
#      chaos grid runs at the end of step 1's full sweep.
#   3. An end-to-end obs-registry counter check: one `ovo order --json`
#      run must emit the registry's canonical keys — the table_cells /
#      oracle_* fields and the schema_version run-info block — proving
#      the CLI renders through the shared obs serializer, not a private
#      formatter.
#
# Any failure stops the script with a nonzero exit.
#
# Usage: tools/ci.sh [-jN]   (parallelism forwarded to build and ctest)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="-j$(nproc)"
for arg in "$@"; do
  case "${arg}" in
    -j*) JOBS="${arg}" ;;
    *)
      echo "usage: tools/ci.sh [-jN]" >&2
      exit 2
      ;;
  esac
done

echo "#### ci: full preset sweep (default / asan / tsan) ############"
tools/verify.sh "${JOBS}"

echo "#### ci: governed bench smoke #################################"
tools/verify.sh --quick "${JOBS}"

echo "#### ci: obs registry counter surface #########################"
# The CLI's JSON must render through the shared obs serializer: registry
# keys (table_cells — NOT the pre-refactor oracle_table_cells — and the
# oracle ledger) plus the schema_version/git/build/threads run-info block.
out="$(build/tools/ovo order --strategy sift --json 'x1 & x2 | x3')"
echo "${out}" | grep -q '"table_cells":'
echo "${out}" | grep -q '"oracle_queries":'
echo "${out}" | grep -q '"oracle_memo_hits":'
echo "${out}" | grep -q '"schema_version":'
if echo "${out}" | grep -q '"oracle_table_cells"'; then
  echo "FAIL: CLI emits the pre-obs key oracle_table_cells" >&2
  exit 1
fi

echo "#### ci green #################################################"
