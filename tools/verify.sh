#!/usr/bin/env bash
# Full verification sweep: tier-1 tests on the default preset, then the
# whole suite again under ASan+UBSan and TSan.  Each preset configures,
# builds, and runs ctest (per-test timeout comes from the test
# registration: 300 s).  Any failure stops the script.
#
# Usage: tools/verify.sh [-jN]   (parallelism forwarded to build and ctest)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:--j$(nproc)}"

for preset in default asan tsan; do
  echo "==== preset: ${preset} ===================================="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" "${JOBS}"
  ctest --preset "${preset}" "${JOBS}"
done

echo "==== all presets green ====================================="
