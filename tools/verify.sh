#!/usr/bin/env bash
# Verification sweep.
#
# Full mode (default): tier-1 tests on the default preset, then the whole
# suite again under ASan+UBSan and TSan.  Each preset configures, builds,
# and runs ctest (per-test timeout comes from the test registration:
# 300 s).  Any failure stops the script.
#
# Full mode also builds the `notrace` preset (-DOVO_TRACE=OFF) and checks
# with nm that the CLI binary references no obs::trace symbols — the
# span macros must compile out completely.
#
# Full mode finishes with the deep CLI chaos sweep (tools/chaos.sh): the
# full fault-site x event grid through main()'s exit paths.
#
# Quick mode (--quick): default preset only, plus a governed smoke run of
# the two scaling benches so the bench JSON surface is exercised too —
# the FS bench runs with --prune bounds and its rows must carry the
# pruning ledger — and a CLI guard that a bound-pruned `ovo order` run
# returns the identical order and size as the dense default.  Quick mode
# also smokes `ovo order --trace` (the exported Chrome trace must be
# valid JSON with fs.group/fs.fence spans and per-thread monotone
# timestamps), builds the OVO_FUZZ targets for a fixed-seed random smoke
# plus corpus replay, and runs the trimmed CLI chaos sweep
# (tools/chaos.sh --quick): torn-write/fault injection through the CLI
# with typed exit codes and resume-to-identical-bytes checks.
#
# Both modes check that the strategy table in README.md (between the
# `<!-- strategies:begin -->` / `<!-- strategies:end -->` markers) matches
# `ovo --list-strategies` exactly — the registry is the source of truth,
# and the docs must not drift from it.
#
# Usage: tools/verify.sh [--quick] [-jN]
#        (parallelism forwarded to build and ctest)

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
JOBS="-j$(nproc)"
for arg in "$@"; do
  case "${arg}" in
    --quick) QUICK=1 ;;
    -j*) JOBS="${arg}" ;;
    *)
      echo "usage: tools/verify.sh [--quick] [-jN]" >&2
      exit 2
      ;;
  esac
done

# The README strategy table must be byte-equivalent (modulo column
# whitespace) to the registry's own listing.
check_strategy_table() {
  local ovo_bin="$1"
  local expected actual
  expected="$(sed -n '/<!-- strategies:begin -->/,/<!-- strategies:end -->/p' README.md |
    grep '^|' | tail -n +3 |
    sed -e 's/^| *`//' -e 's/` *| */ /' -e 's/ *|$//' |
    tr -s ' ')"
  actual="$("${ovo_bin}" --list-strategies | tr -s ' ')"
  if ! diff <(printf '%s\n' "${expected}") <(printf '%s\n' "${actual}"); then
    echo "FAIL: README.md strategy table drifted from" \
         "'ovo --list-strategies' (registry is the source of truth)" >&2
    exit 1
  fi
  echo "strategy table: README.md matches --list-strategies"
}

run_preset() {
  local preset="$1"
  echo "==== preset: ${preset} ===================================="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" "${JOBS}"
  ctest --preset "${preset}" "${JOBS}"
}

run_preset default
check_strategy_table build/tools/ovo

if [[ "${QUICK}" -eq 1 ]]; then
  echo "==== quick: governed bench smoke ==========================="
  smoke_dir="$(mktemp -d)"
  trap 'rm -rf "${smoke_dir}"' EXIT
  build/bench/bench_fs_scaling --work-limit 200000 --prune bounds \
    --json "${smoke_dir}/fs.json"
  build/bench/bench_quantum_scaling --work-limit 200000 \
    --json "${smoke_dir}/quantum.json"
  # The governed rows must carry the unified oracle counters, the
  # ovo::par scheduler counters, and (FS, under --prune bounds) the
  # bound-pruning ledger.
  grep -q '"oracle_memo_hits"' "${smoke_dir}/fs.json"
  grep -q '"oracle_memo_hits"' "${smoke_dir}/quantum.json"
  grep -q '"sched_barrier_wait_ns"' "${smoke_dir}/fs.json"
  grep -q '"sched_barrier_wait_ns"' "${smoke_dir}/quantum.json"
  grep -q '"states_pruned"' "${smoke_dir}/fs.json"
  grep -q '"prune_ratio"' "${smoke_dir}/fs.json"
  echo "==== quick: bound-pruned bit-identity guard ================"
  # `--prune bounds` must return the identical order and size as the
  # dense default (`--prune off`); only the work ledger may differ.
  smoke_fn="x1 & x2 | x3 & x4 | x5 & x6 | x7 & x8"
  result_fields() {
    grep -o '"nodes":[0-9]*\|"optimal":[a-z]*\|"order":\[[0-9,]*\]'
  }
  build/tools/ovo order --strategy fs --prune off --json "${smoke_fn}" \
    | result_fields > "${smoke_dir}/dense.txt"
  build/tools/ovo order --strategy fs --prune bounds --json "${smoke_fn}" \
    | result_fields > "${smoke_dir}/pruned.txt"
  diff "${smoke_dir}/dense.txt" "${smoke_dir}/pruned.txt"
  # ...and the pruned CLI run must surface its ledger.
  build/tools/ovo order --strategy fs --prune bounds --json "${smoke_fn}" \
    | grep -q '"states_pruned"'
  echo "==== quick: checkpoint round-trip smoke ===================="
  # A run interrupted mid-DP (deterministic fault injection standing in
  # for SIGINT) must leave a resumable snapshot, and the resumed run's
  # JSON must be byte-identical to the uninterrupted run's — order, size,
  # and every ledger.  Dense mode: no seed stage, so any trip lands at a
  # DP layer fence.
  ckpt="${smoke_dir}/smoke.ckpt"
  build/tools/ovo order --strategy auto --prune off --json "${smoke_fn}" \
    > "${smoke_dir}/straight.json"
  build/tools/ovo order --strategy auto --prune off --json \
    --checkpoint "${ckpt}" --fault-cancel-at 3 "${smoke_fn}" \
    > "${smoke_dir}/tripped.json"
  grep -q '"outcome":"cancelled"' "${smoke_dir}/tripped.json"
  [[ -f "${ckpt}" ]]
  build/tools/ovo order --strategy auto --prune off --json \
    --resume "${ckpt}" "${smoke_fn}" > "${smoke_dir}/resumed.json"
  diff "${smoke_dir}/straight.json" "${smoke_dir}/resumed.json"
  # A corrupted snapshot must be rejected with a typed error (exit 3),
  # never resumed silently.
  printf '\xff' | dd of="${ckpt}" bs=1 seek=200 conv=notrunc 2>/dev/null
  rc=0
  build/tools/ovo order --strategy auto --prune off --json \
    --resume "${ckpt}" "${smoke_fn}" >/dev/null 2>"${smoke_dir}/err.txt" \
    || rc=$?
  [[ "${rc}" -eq 3 ]]
  grep -q 'checkpoint error' "${smoke_dir}/err.txt"
  echo "==== quick: trace-span smoke ==============================="
  # A traced parallel run must export a loadable Chrome trace: valid
  # JSON, complete ("X") events only, the FS* DP's fs.group / fs.fence
  # spans present, and timestamps monotone within each thread lane.
  build/tools/ovo order --strategy fs --threads 2 --json \
    --trace "${smoke_dir}/trace.json" "${smoke_fn}" > /dev/null
  python3 - "${smoke_dir}/trace.json" <<'PY'
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
assert events, "trace is empty"
names = {e["name"] for e in events}
assert {"fs.group", "fs.fence"} <= names, f"missing FS spans: {names}"
last = {}
for e in events:
    assert e["ph"] == "X", e
    assert e["dur"] >= 0 and e["ts"] >= last.get(e["tid"], 0), e
    last[e["tid"]] = e["ts"]
print(f"trace: {len(events)} events across {len(last)} thread lanes, "
      f"spans {sorted(names)}")
PY
  echo "==== quick: fuzz-frontier smoke ============================"
  # Build the fuzz targets (standalone replay drivers under GCC,
  # libFuzzer under Clang) and give each one a fixed-seed random smoke
  # plus a replay of its regression corpus — a fast proof that the
  # OVO_FUZZ surface still compiles and the decoders reject the corpus'
  # malformed-input classes with typed errors.
  cmake --preset default -DOVO_FUZZ=ON > /dev/null
  cmake --build --preset default "${JOBS}" \
    --target fuzz_blif fuzz_pla fuzz_expr fuzz_snapshot fuzz_diagram
  for t in blif pla expr snapshot diagram; do
    build/fuzz/"fuzz_${t}" --rand 3000 --seed 7 > /dev/null
  done
  build/fuzz/fuzz_blif tests/data/corpus/blif/* > /dev/null
  build/fuzz/fuzz_pla tests/data/corpus/pla/* > /dev/null
  build/fuzz/fuzz_expr tests/data/corpus/expr/* > /dev/null
  build/fuzz/fuzz_snapshot tests/data/corpus/snapshot/* > /dev/null
  build/fuzz/fuzz_diagram tests/data/corpus/diagram/* > /dev/null
  echo "fuzz smoke: 5 targets, seeded random + corpus replay green"
  echo "==== quick: CLI chaos sweep (torn writes, typed exits) ====="
  tools/chaos.sh --quick
  echo "==== quick sweep green ====================================="
  exit 0
fi

run_preset asan
run_preset tsan

echo "==== full: CLI chaos sweep ================================="
# The deep event grid: every checkpoint filesystem site x event 1..12,
# allocation events along a Fibonacci ladder, five probabilistic seeds.
# (The in-process sweeps — every syscall of the n=10 pipeline, torn
# writes at every cut — already ran in ctest on all three presets above,
# via fault_sweep_test and crash_sim_test.)
tools/chaos.sh

echo "==== notrace: -DOVO_TRACE=OFF symbol check ================="
# The span macros must compile to nothing: an OVO_TRACE=OFF build of the
# CLI may reference no obs::trace symbol at all, and --trace must degrade
# to a note instead of an error.
cmake --preset notrace
cmake --build --preset notrace "${JOBS}" --target ovo
if nm -C build-notrace/tools/ovo | grep -q 'obs::trace'; then
  echo "FAIL: -DOVO_TRACE=OFF binary still references obs::trace" >&2
  exit 1
fi
build-notrace/tools/ovo order --strategy fs --json \
  --trace /dev/null "x1 & x2" > /dev/null
echo "notrace: ovo binary carries no obs::trace symbols"

echo "==== all presets green ====================================="
