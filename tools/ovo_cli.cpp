// ovo — command-line front end for the optimal-variable-ordering library.
//
//   ovo order   [--zdd] [--strategy NAME] [--engine fs|bnb|quantum]
//               [--shared] [--threads N] [--prune off|bounds]
//               [--prune-seed NAME] [--timeout-ms N] [--node-limit N]
//               [--mem-limit-mb N] [--work-limit N] [--json]
//               [--json-out FILE] [--trace FILE] [--checkpoint FILE]
//               [--checkpoint-every K] [--resume FILE]
//               [--fault-cancel-at N] [--fault-alloc-at N]
//               [--fault-fileop SITE:N] [--fault-prob P]
//               [--fault-seed S] <input>
//   ovo size    --order v1,v2,... [--zdd] <input>
//   ovo compare [--threads N] <input>   # exact vs heuristics report
//   ovo tables  [--k K] [--iters N]     # reproduce paper Tables 1 and 2
//   ovo dot     <input>                 # minimum OBDD as Graphviz
//   ovo --list-strategies               # registered ordering strategies
//
// Every minimizer is a named strategy in the reorder::strategies()
// registry; --strategy selects one directly, and the legacy --engine
// flag is an alias (fs → "fs", or "auto" when budget or checkpoint flags
// are present; bnb → "bnb"; quantum → "quantum").  The budget flags
// bound a run (see docs/INTERNALS.md, "Resource governance"); every
// strategy then returns its best incumbent plus why it stopped.  --json
// emits one machine-readable object including the outcome, the certified
// lower bound, and the unified oracle counters — rendered through the
// obs shared serializer, so its field names match BENCH_fs.json /
// BENCH_quantum.json exactly; --json-out additionally writes that object
// to FILE atomically (temp file + fsync + rename), so a killed run never
// leaves a torn artifact.  --trace FILE collects obs trace spans during
// the run and writes them as Chrome trace-event JSON (open the file in
// chrome://tracing or Perfetto; see EXPERIMENTS.md).
//
// Crash safety: --checkpoint snapshots the exact DP's state at layer
// fences (and when a budget/cancel trips); --resume restarts from such a
// snapshot and replays the remaining layers bit-identically.  SIGINT or
// SIGTERM trips the run's CancelToken: the run winds down through the
// normal cancelled path — best-so-far order, certified lower bound,
// final snapshot — and a second signal exits immediately (status 130).
//
// Fault injection (deterministic chaos, see rt/fault.hpp): the --fault-*
// flags install a FaultSchedule for the run.  --fault-cancel-at N trips
// the cancel token at the Nth governor poll; --fault-alloc-at N fails
// the Nth node-store allocation event (std::bad_alloc); --fault-fileop
// SITE:N fails the Nth filesystem operation at a named site (file_open,
// file_read, file_write, file_fsync, file_rename, file_close,
// file_unlink); --fault-prob P (+ --fault-seed S) fails each I/O or
// dispatch event independently with probability P, reproducibly for a
// given seed.  Exit codes: 0 success, 1 error, 2 usage, 3 checkpoint
// error, 4 injected fault (std::bad_alloc / rt::FaultInjected), 130
// second signal.
//
// <input> is one of:
//   - a path ending in .pla  (Berkeley PLA; first output used unless
//     --shared, which optimizes all outputs as one shared diagram),
//   - a path ending in .blif (combinational BLIF subset),
//   - anything else: parsed as a Boolean formula over x1, x2, ...
//     e.g.  ovo order "x1 & x2 | x3 & x4"

#include <atomic>
#include <cinttypes>
#include <csignal>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <numeric>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bdd/manager.hpp"
#include "core/fs_checkpoint.hpp"
#include "core/minimize.hpp"
#include "core/multi_output.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/exec_policy.hpp"
#include "quantum/min_find.hpp"
#include "quantum/opt_obdd.hpp"
#include "quantum/params.hpp"
#include "reorder/baselines.hpp"
#include "reorder/branch_and_bound.hpp"
#include "reorder/minimize_auto.hpp"
#include "reorder/strategy.hpp"
#include "rt/budget.hpp"
#include "rt/checkpoint.hpp"
#include "rt/fault.hpp"
#include "tt/blif.hpp"
#include "tt/expr.hpp"
#include "tt/pla.hpp"
#include "util/check.hpp"

namespace {

using namespace ovo;

/// Shared cancellation token tripped by SIGINT/SIGTERM (and by
/// --fault-cancel-at, which simulates a signal at a deterministic
/// governor checkpoint for tests).
rt::CancelToken g_interrupt;
std::atomic<int> g_signals{0};

/// Async-signal-safe by construction: relaxed atomic ops and _Exit only.
/// First signal requests a graceful stop through the governor; a second
/// one means the user is done waiting.
void on_signal(int) {
  if (g_signals.fetch_add(1, std::memory_order_relaxed) > 0)
    std::_Exit(130);
  g_interrupt.cancel();
}

struct LoadedInput {
  std::vector<tt::TruthTable> outputs;  ///< one per output
  std::string description;
};

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  OVO_CHECK_MSG(in.good(), "cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

LoadedInput load_input(const std::string& spec) {
  LoadedInput out;
  if (ends_with(spec, ".pla")) {
    const tt::Pla pla = tt::parse_pla(read_file(spec));
    out.outputs = pla.output_tables();
    out.description = "PLA " + spec + " (" +
                      std::to_string(pla.num_inputs) + " inputs, " +
                      std::to_string(pla.num_outputs) + " outputs)";
  } else if (ends_with(spec, ".blif")) {
    const tt::BlifModel m = tt::parse_blif(read_file(spec));
    out.outputs = m.output_tables();
    out.description = "BLIF " + (m.name.empty() ? spec : m.name) + " (" +
                      std::to_string(m.inputs.size()) + " inputs, " +
                      std::to_string(m.outputs.size()) + " outputs)";
  } else {
    const tt::ExprPtr e = tt::parse_expr(spec);
    const int n = std::max(1, tt::expr_num_vars(*e));
    out.outputs.push_back(tt::expr_to_truth_table(*e, n));
    out.description =
        "formula on " + std::to_string(n) + " variables";
  }
  OVO_CHECK_MSG(!out.outputs.empty(), "input has no outputs");
  return out;
}

void print_order(const std::vector<int>& order) {
  for (std::size_t i = 0; i < order.size(); ++i)
    std::printf("%sx%d", i == 0 ? "" : " ", order[i] + 1);
  std::printf("\n");
}

/// --threads N: 0 = auto (OVO_THREADS env or hardware concurrency);
/// default 1 (serial).
par::ExecPolicy parse_threads(const std::string& value) {
  par::ExecPolicy exec;
  exec.num_threads = std::stoi(value);
  OVO_CHECK_MSG(exec.num_threads >= 0, "--threads: must be >= 0");
  return exec;
}

std::uint64_t parse_u64_flag(const char* flag, const std::string& value) {
  try {
    return std::stoull(value);
  } catch (const std::exception&) {
    OVO_CHECK_MSG(false, std::string(flag) + ": not a number: " + value);
    __builtin_unreachable();
  }
}

void appendf(std::string& s, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  s += buf;
}

/// Builds the one-object JSON report as a string, so callers can both
/// print it and persist it atomically (--json-out).  Every counter field
/// is rendered through the obs shared serializer: the keys here are the
/// metric table's canonical json_keys, byte-identical to the ones the
/// scaling benches emit.
std::string json_order_string(const std::string& strategy,
                              core::DiagramKind kind, std::uint64_t nodes,
                              bool optimal, std::uint64_t lower_bound,
                              const std::string& outcome,
                              std::uint64_t work_units, int threads,
                              const std::vector<int>& order,
                              const reorder::OracleStats* oracle = nullptr) {
  std::string s;
  appendf(s, "{\"strategy\":\"%s\"", strategy.c_str());
  obs::append_json_str(s, "kind",
                       kind == core::DiagramKind::kZdd ? "zdd" : "bdd");
  obs::append_json_u64(s, "nodes", nodes);
  appendf(s, ",\"optimal\":%s", optimal ? "true" : "false");
  obs::append_json_u64(s, "lower_bound", lower_bound);
  obs::append_json_str(s, "outcome", outcome.c_str());
  obs::Ledger l;
  l.record(obs::Metric::kRtWorkCharged, work_units);
  obs::append_metric_json(s, l, obs::Metric::kRtWorkCharged);
  if (oracle != nullptr) {
    oracle->to_ledger(l);
    obs::append_counters_json(s, l);
  }
  obs::append_run_info_json(s, threads);
  s += ",\"order\":[";
  for (std::size_t i = 0; i < order.size(); ++i)
    appendf(s, "%s%d", i == 0 ? "" : ",", order[i] + 1);
  s += "]}\n";
  return s;
}

/// Stops collection and writes the Chrome trace on every exit from
/// cmd_order (including error unwinds), so --trace never loses the spans
/// of a run that failed late.
struct TraceFlusher {
  std::string path;
  ~TraceFlusher() {
#if OVO_TRACE_ENABLED
    if (path.empty()) return;
    obs::trace::disable();
    if (!obs::trace::write_json(path))
      std::fprintf(stderr, "warning: could not write trace to '%s'\n",
                   path.c_str());
#endif
  }
};

/// Prints the JSON report and, when --json-out was given, writes it to
/// that path atomically.
void emit_json(const std::string& text, const std::string& json_out) {
  std::fputs(text.c_str(), stdout);
  if (!json_out.empty())
    rt::write_file_atomic(json_out, text.data(), text.size());
}

void print_strategy_list() {
  for (const reorder::Strategy& s : reorder::strategies())
    std::printf("%-13s %s\n", s.name, s.description);
}

int cmd_order(const std::vector<std::string>& args) {
  core::DiagramKind kind = core::DiagramKind::kBdd;
  std::string engine = "fs";
  std::string strategy_name;
  bool shared = false;
  bool json = false;
  rt::Budget budget;
  par::ExecPolicy exec;
  par::PruneMode prune = par::PruneMode::kOff;
  std::string prune_seed = "sift";
  std::string json_out;
  std::string trace_path;
  std::string checkpoint_path;
  std::string resume_path;
  std::uint64_t checkpoint_every = 1;
  std::uint64_t fault_cancel_at = 0;
  rt::FaultSchedule fault_schedule;
  bool fault_requested = false;
  std::string input;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--zdd") {
      kind = core::DiagramKind::kZdd;
    } else if (args[i] == "--engine" && i + 1 < args.size()) {
      engine = args[++i];
    } else if (args[i] == "--strategy" && i + 1 < args.size()) {
      strategy_name = args[++i];
    } else if (args[i] == "--list-strategies") {
      print_strategy_list();
      return 0;
    } else if (args[i] == "--shared") {
      shared = true;
    } else if (args[i] == "--json") {
      json = true;
    } else if (args[i] == "--threads" && i + 1 < args.size()) {
      exec = parse_threads(args[++i]);
    } else if (args[i] == "--prune" && i + 1 < args.size()) {
      const std::string& mode = args[++i];
      if (mode == "off") {
        prune = par::PruneMode::kOff;
      } else if (mode == "bounds") {
        prune = par::PruneMode::kBounds;
      } else {
        std::fprintf(stderr, "--prune: expected off|bounds, got '%s'\n",
                     mode.c_str());
        return 2;
      }
    } else if (args[i] == "--prune-seed" && i + 1 < args.size()) {
      prune_seed = args[++i];
    } else if (args[i] == "--timeout-ms" && i + 1 < args.size()) {
      budget.deadline_ms = parse_u64_flag("--timeout-ms", args[++i]);
    } else if (args[i] == "--node-limit" && i + 1 < args.size()) {
      budget.node_limit = parse_u64_flag("--node-limit", args[++i]);
    } else if (args[i] == "--mem-limit-mb" && i + 1 < args.size()) {
      budget.bytes_limit =
          parse_u64_flag("--mem-limit-mb", args[++i]) * 1024 * 1024;
    } else if (args[i] == "--work-limit" && i + 1 < args.size()) {
      budget.work_limit = parse_u64_flag("--work-limit", args[++i]);
    } else if (args[i] == "--json-out" && i + 1 < args.size()) {
      json_out = args[++i];
    } else if (args[i] == "--trace" && i + 1 < args.size()) {
      trace_path = args[++i];
    } else if (args[i] == "--checkpoint" && i + 1 < args.size()) {
      checkpoint_path = args[++i];
    } else if (args[i] == "--checkpoint-every" && i + 1 < args.size()) {
      checkpoint_every = parse_u64_flag("--checkpoint-every", args[++i]);
      OVO_CHECK_MSG(checkpoint_every > 0, "--checkpoint-every: must be > 0");
    } else if (args[i] == "--resume" && i + 1 < args.size()) {
      resume_path = args[++i];
    } else if (args[i] == "--fault-cancel-at" && i + 1 < args.size()) {
      fault_cancel_at = parse_u64_flag("--fault-cancel-at", args[++i]);
    } else if (args[i] == "--fault-alloc-at" && i + 1 < args.size()) {
      fault_schedule.fail_nth(rt::FaultSite::kAlloc,
                              parse_u64_flag("--fault-alloc-at", args[++i]));
      fault_requested = true;
    } else if (args[i] == "--fault-fileop" && i + 1 < args.size()) {
      // SITE:N — fail the Nth event at a named site, e.g. file_write:3.
      const std::string spec = args[++i];
      const std::size_t colon = spec.find(':');
      rt::FaultSite site = rt::FaultSite::kCount;
      if (colon == std::string::npos ||
          !rt::parse_fault_site(spec.substr(0, colon).c_str(), &site)) {
        std::fprintf(stderr,
                     "--fault-fileop: expected SITE:N (sites: file_open, "
                     "file_read, file_write, file_fsync, file_rename, "
                     "file_close, file_unlink), got '%s'\n",
                     spec.c_str());
        return 2;
      }
      fault_schedule.fail_nth(
          site, parse_u64_flag("--fault-fileop", spec.substr(colon + 1)));
      fault_requested = true;
    } else if (args[i] == "--fault-prob" && i + 1 < args.size()) {
      fault_schedule.probability = std::atof(args[++i].c_str());
      OVO_CHECK_MSG(fault_schedule.probability >= 0.0 &&
                        fault_schedule.probability <= 1.0,
                    "--fault-prob: expected a probability in [0, 1]");
      // Probabilistic chaos targets the I/O and dispatch sites; the
      // allocation and poll sites have dedicated deterministic flags.
      fault_schedule.prob_mask =
          rt::FaultSchedule::site_bit(rt::FaultSite::kTaskDispatch) |
          rt::FaultSchedule::site_bit(rt::FaultSite::kFileOpen) |
          rt::FaultSchedule::site_bit(rt::FaultSite::kFileRead) |
          rt::FaultSchedule::site_bit(rt::FaultSite::kFileWrite) |
          rt::FaultSchedule::site_bit(rt::FaultSite::kFileFsync) |
          rt::FaultSchedule::site_bit(rt::FaultSite::kFileRename) |
          rt::FaultSchedule::site_bit(rt::FaultSite::kFileClose) |
          rt::FaultSchedule::site_bit(rt::FaultSite::kFileUnlink);
      fault_requested = true;
    } else if (args[i] == "--fault-seed" && i + 1 < args.size()) {
      fault_schedule.seed = parse_u64_flag("--fault-seed", args[++i]);
    } else {
      input = args[i];
    }
  }
  OVO_CHECK_MSG(!input.empty(), "order: missing input");
  exec.prune = prune;  // after the loop: --threads rebuilds ExecPolicy

  // --trace: start span collection now so strategy setup (seeding, base
  // construction) is on the timeline too; flushed on every exit path.
  TraceFlusher trace_flusher;
  if (!trace_path.empty()) {
#if OVO_TRACE_ENABLED
    trace_flusher.path = trace_path;
    obs::trace::enable();
#else
    std::fprintf(stderr,
                 "note: --trace ignored (built with -DOVO_TRACE=OFF)\n");
#endif
  }
  // `budgeted` reflects the user's explicit limit flags only; the
  // signal-driven CancelToken attached below must not reroute an
  // unbudgeted `--engine fs` run onto the governed ladder.
  const bool budgeted = !budget.unlimited();
  const bool checkpointing =
      !checkpoint_path.empty() || !resume_path.empty();

  // Graceful interruption: Ctrl-C / SIGTERM trips the CancelToken and
  // the run winds down through the normal cancelled path (snapshot,
  // best-so-far JSON).  --fault-cancel-at trips the same token at a
  // deterministic governor checkpoint instead, for tests.
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  budget.cancel = &g_interrupt;
  std::optional<rt::ScopedFaultPlan> fault;
  if (fault_cancel_at > 0) {
    fault_schedule.cancel_at_poll = fault_cancel_at;
    fault_schedule.cancel = &g_interrupt;
    fault_requested = true;
  }
  if (fault_requested) fault.emplace(fault_schedule);

  const LoadedInput loaded = load_input(input);
  if (!json) std::printf("input: %s\n", loaded.description.c_str());

  if (shared) {
    if (budgeted)
      std::fprintf(stderr,
                   "note: budget flags are not supported with --shared\n");
    if (checkpointing)
      std::fprintf(
          stderr,
          "note: checkpoint/resume is not supported with --shared\n");
    const auto r = core::fs_minimize_shared(loaded.outputs, kind, exec);
    if (json) {
      emit_json(json_order_string("fs-shared", kind, r.min_internal_nodes,
                                  true, r.min_internal_nodes, "complete",
                                  r.ops.table_cells,
                                  exec.resolved_threads(),
                                  r.order_root_first),
                json_out);
      return 0;
    }
    std::printf("shared minimum: %" PRIu64 " internal nodes\norder: ",
                r.min_internal_nodes);
    print_order(r.order_root_first);
    return 0;
  }

  const tt::TruthTable& f = loaded.outputs.front();
  if (loaded.outputs.size() > 1 && !json)
    std::printf("note: %zu outputs; optimizing the first (use --shared "
                "for all)\n",
                loaded.outputs.size());
  // --engine is an alias into the strategy registry; --strategy wins
  // when both are given.  Checkpoint flags route `fs` onto the governed
  // `auto` ladder too: only it degrades gracefully on a trip, and a
  // snapshot's provenance (seed order, incumbent) is its contract.
  if (strategy_name.empty()) {
    if (engine == "fs") {
      strategy_name = (budgeted || checkpointing) ? "auto" : "fs";
    } else if (engine == "bnb" || engine == "quantum") {
      strategy_name = engine;
    } else {
      std::fprintf(stderr, "unknown engine '%s'\n", engine.c_str());
      return 2;
    }
  }
  const reorder::Strategy* strategy = reorder::find_strategy(strategy_name);
  if (strategy == nullptr) {
    std::fprintf(stderr,
                 "unknown strategy '%s' (see ovo --list-strategies)\n",
                 strategy_name.c_str());
    return 2;
  }

  // A resumed run must replay the original run's configuration; the
  // snapshot's fingerprint pins the prune mode, so adopt it rather than
  // fail on a forgotten --prune flag (an actually different instance
  // still raises kWrongInstance inside the DP).
  core::FsStarSnapshot snapshot;
  if (!resume_path.empty()) {
    snapshot = core::load_snapshot(resume_path);
    const auto snap_prune = static_cast<par::PruneMode>(
        snapshot.fingerprint.prune);
    if (snap_prune != exec.prune) {
      std::fprintf(stderr,
                   "note: --resume snapshot was written with --prune %s; "
                   "adopting it\n",
                   snap_prune == par::PruneMode::kBounds ? "bounds" : "off");
      exec.prune = snap_prune;
    }
  }

  rt::Governor gov(budget);
  reorder::EvalContext ctx;
  ctx.exec = exec;
  // Always governed: an "unlimited" budget still carries the signal
  // cancel token, and work accounting is what a resumed run restores.
  ctx.gov = &gov;
  reorder::StrategyOptions sopt;
  sopt.kind = kind;
  sopt.prune_seed = prune_seed;
  sopt.ckpt.path = checkpoint_path;
  sopt.ckpt.every = static_cast<int>(checkpoint_every);
  if (!resume_path.empty()) sopt.ckpt.resume = &snapshot;
  const reorder::StrategyResult r = strategy->run(f, sopt, ctx);
  const std::string outcome = rt::outcome_name(r.outcome);
  if (json) {
    emit_json(json_order_string(strategy->name, kind, r.internal_nodes,
                                r.optimal, r.lower_bound, outcome,
                                r.run.work_units, exec.resolved_threads(),
                                r.order_root_first, &r.oracle),
              json_out);
    return 0;
  }
  std::printf("strategy: %s (%" PRIu64 " size queries, %" PRIu64
              " evaluated, %" PRIu64 " memo hits; outcome %s)\n",
              strategy->name, r.oracle.queries, r.oracle.evals,
              r.oracle.memo_hits, outcome.c_str());
  std::printf("%s %s: %" PRIu64 " internal nodes\norder: ",
              r.optimal ? "minimum" : "best found",
              kind == core::DiagramKind::kZdd ? "ZDD" : "OBDD",
              r.internal_nodes);
  print_order(r.order_root_first);
  return 0;
}

int cmd_size(const std::vector<std::string>& args) {
  core::DiagramKind kind = core::DiagramKind::kBdd;
  std::string order_spec, input;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--zdd") {
      kind = core::DiagramKind::kZdd;
    } else if (args[i] == "--order" && i + 1 < args.size()) {
      order_spec = args[++i];
    } else {
      input = args[i];
    }
  }
  OVO_CHECK_MSG(!input.empty() && !order_spec.empty(),
                "size: need --order and an input");
  const LoadedInput loaded = load_input(input);
  std::vector<int> order;
  std::stringstream ss(order_spec);
  std::string item;
  while (std::getline(ss, item, ','))
    order.push_back(std::stoi(item) - 1);  // CLI is 1-based like formulas
  const std::uint64_t s =
      core::diagram_size_for_order(loaded.outputs.front(), order, kind);
  std::printf("%" PRIu64 " internal nodes\n", s);
  return 0;
}

int cmd_compare(const std::vector<std::string>& args) {
  par::ExecPolicy exec;
  std::string input;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--threads" && i + 1 < args.size()) {
      exec = parse_threads(args[++i]);
    } else {
      input = args[i];
    }
  }
  OVO_CHECK_MSG(!input.empty(), "compare: missing input");
  const LoadedInput loaded = load_input(input);
  const tt::TruthTable& f = loaded.outputs.front();
  std::printf("input: %s\n\n", loaded.description.c_str());
  const auto exact = core::fs_minimize(f, core::DiagramKind::kBdd, exec);
  std::vector<int> id(static_cast<std::size_t>(f.num_vars()));
  std::iota(id.begin(), id.end(), 0);
  const auto sifted =
      reorder::sift(f, id, core::DiagramKind::kBdd, /*max_passes=*/8, exec);
  const std::uint64_t identity = core::diagram_size_for_order(f, id);
  std::printf("exact optimum : %" PRIu64 " internal nodes\n",
              exact.min_internal_nodes);
  std::printf("sifting       : %" PRIu64 "\n", sifted.internal_nodes);
  std::printf("identity order: %" PRIu64 "\n", identity);
  if (f.num_vars() <= 8) {
    const auto bf =
        reorder::brute_force_minimize(f, core::DiagramKind::kBdd, exec);
    std::printf("pessimal order: %" PRIu64 "\n", bf.worst_internal_nodes);
  }
  return 0;
}

int cmd_tables(const std::vector<std::string>& args) {
  int k = 6, iters = 10;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--k" && i + 1 < args.size()) k = std::stoi(args[++i]);
    if (args[i] == "--iters" && i + 1 < args.size())
      iters = std::stoi(args[++i]);
  }
  std::printf("Table 1 (gamma_k):\n");
  for (int kk = 1; kk <= k; ++kk) {
    const auto s = quantum::solve_alphas(kk, 3.0);
    std::printf("  k=%d gamma=%.5f alphas:", kk, s.gamma);
    for (const double a : s.alphas) std::printf(" %.6f", a);
    std::printf("\n");
  }
  std::printf("Table 2 (composition tower, k=%d):\n", k);
  for (const auto& row : quantum::composition_tower(k, iters))
    std::printf("  beta=%.5f\n", row.gamma);
  return 0;
}

int cmd_dot(const std::vector<std::string>& args) {
  OVO_CHECK_MSG(args.size() == 1, "dot: exactly one input");
  const LoadedInput loaded = load_input(args[0]);
  const tt::TruthTable& f = loaded.outputs.front();
  const auto r = core::fs_minimize(f);
  bdd::Manager m(f.num_vars(), r.order_root_first);
  std::printf("%s", m.to_dot(m.from_truth_table(f), "minimum").c_str());
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  ovo order   [--zdd] [--strategy NAME] [--engine fs|bnb|quantum]\n"
      "              [--shared] [--threads N] [--prune off|bounds]\n"
      "              [--prune-seed sift|window|restarts|anneal|none]\n"
      "              [--timeout-ms N] [--node-limit N] [--mem-limit-mb N]\n"
      "              [--work-limit N] [--json] [--json-out FILE]\n"
      "              [--trace FILE] [--checkpoint FILE]\n"
      "              [--checkpoint-every K]\n"
      "              [--resume FILE] [--fault-cancel-at N]\n"
      "              [--fault-alloc-at N] [--fault-fileop SITE:N]\n"
      "              [--fault-prob P] [--fault-seed S] <input>\n"
      "  ovo size    --order v1,v2,... [--zdd] <input>\n"
      "  ovo compare [--threads N] <input>\n"
      "  ovo tables  [--k K] [--iters N]\n"
      "  ovo dot     <input>\n"
      "  ovo --list-strategies\n"
      "<input>: file.pla | file.blif | a formula like \"x1 & x2 | x3\"\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "--list-strategies") {
      print_strategy_list();
      return 0;
    }
    if (cmd == "order") return cmd_order(args);
    if (cmd == "size") return cmd_size(args);
    if (cmd == "compare") return cmd_compare(args);
    if (cmd == "tables") return cmd_tables(args);
    if (cmd == "dot") return cmd_dot(args);
    usage();
    return 2;
  } catch (const rt::CheckpointError& e) {
    // what() is already "<kind-name>: <detail>".
    std::fprintf(stderr, "checkpoint error: %s\n", e.what());
    return 3;
  } catch (const rt::FaultInjected& e) {
    std::fprintf(stderr, "injected fault: %s\n", e.what());
    return 4;
  } catch (const std::bad_alloc&) {
    // Real OOM or --fault-alloc-at; either way the run unwound cleanly.
    std::fprintf(stderr, "injected fault: allocation failure\n");
    return 4;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
