#!/usr/bin/env bash
# Chaos sweep over the ovo CLI: drive `ovo order` with the --fault-*
# flags (see rt/fault.hpp) and assert the process-level failure contract
# at every injection point:
#
#   * the exit code is typed — 0 (fault absorbed / never reached),
#     3 (checkpoint I/O error), or 4 (injected bad_alloc) — never 1, and
#     never a signal death;
#   * no `<ckpt>.tmp` survives any run (the atomic-writer leak guard);
#   * whatever snapshot IS on disk after a failed run resumes to the
#     byte-identical JSON of an uninterrupted run (the crash-safety
#     invariant, end to end through the CLI).
#
# Deterministic sweeps fail the Nth event at each filesystem site and the
# Nth allocation event; a seeded probabilistic pass shakes out whatever
# the deterministic grid misses and must itself be bit-reproducible.
#
# Quick mode (--quick) trims the grid for CI smoke; full mode sweeps a
# deeper event range.  The in-process equivalents (every syscall of an
# n=10 pipeline, torn writes at every cut) live in fault_sweep_test and
# crash_sim_test; this script checks the same contracts one level up,
# through main()'s exit paths.
#
# Usage: tools/chaos.sh [--quick] [path/to/ovo]

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
OVO="build/tools/ovo"
for arg in "$@"; do
  case "${arg}" in
    --quick) QUICK=1 ;;
    *) OVO="${arg}" ;;
  esac
done
[[ -x "${OVO}" ]] || { echo "chaos.sh: ${OVO} not built" >&2; exit 2; }

FN="x1 & x2 | x3 & x4 | x5 & x6"
WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT
CKPT="${WORK}/chaos.ckpt"

if [[ "${QUICK}" -eq 1 ]]; then
  FILE_SITES=(file_write file_rename)
  FILE_NTHS=(1 2 3)
  ALLOC_NTHS=(1 2)
  PROB_SEEDS=(7)
else
  FILE_SITES=(file_open file_write file_fsync file_rename file_close)
  FILE_NTHS=(1 2 3 4 5 6 7 8 9 10 11 12)
  ALLOC_NTHS=(1 2 3 5 8 13 21 34)
  PROB_SEEDS=(1 2 3 4 5)
fi

# The uninterrupted reference run every resumed run must reproduce.
"${OVO}" order --strategy auto --prune off --json "${FN}" \
  > "${WORK}/straight.json"

runs=0 absorbed=0 io_fail=0 alloc_fail=0 resumed=0

# rc-typed run + post-run invariants.  $1..: ovo args after `order`.
chaos_run() {
  rm -f "${CKPT}" "${CKPT}.tmp"
  local rc=0
  "${OVO}" order --strategy auto --prune off --json \
    --checkpoint "${CKPT}" "$@" "${FN}" \
    > "${WORK}/out.json" 2> "${WORK}/err.txt" || rc=$?
  runs=$((runs + 1))
  case "${rc}" in
    0) absorbed=$((absorbed + 1)) ;;
    3) io_fail=$((io_fail + 1)) ;;
    4) alloc_fail=$((alloc_fail + 1)) ;;
    *)
      echo "FAIL: untyped exit ${rc} for: $*" >&2
      cat "${WORK}/err.txt" >&2
      exit 1
      ;;
  esac
  if [[ -e "${CKPT}.tmp" ]]; then
    echo "FAIL: temp file leaked for: $*" >&2
    exit 1
  fi
  # A failed run that left a snapshot behind must resume to the
  # uninterrupted run's bytes.
  if [[ "${rc}" -ne 0 && -f "${CKPT}" ]]; then
    "${OVO}" order --strategy auto --prune off --json \
      --resume "${CKPT}" "${FN}" > "${WORK}/resumed.json"
    diff "${WORK}/straight.json" "${WORK}/resumed.json" || {
      echo "FAIL: resume diverged for: $*" >&2
      exit 1
    }
    resumed=$((resumed + 1))
  fi
}

echo "== chaos: filesystem-site sweep"
for site in "${FILE_SITES[@]}"; do
  for nth in "${FILE_NTHS[@]}"; do
    chaos_run --fault-fileop "${site}:${nth}"
  done
done

echo "== chaos: allocation-site sweep"
for nth in "${ALLOC_NTHS[@]}"; do
  chaos_run --fault-alloc-at "${nth}"
done

echo "== chaos: seeded probabilistic pass"
for seed in "${PROB_SEEDS[@]}"; do
  chaos_run --fault-prob 0.05 --fault-seed "${seed}"
  cp "${WORK}/out.json" "${WORK}/prob_a.json"
  chaos_run --fault-prob 0.05 --fault-seed "${seed}"
  # Same seed, same schedule, same bytes: the probabilistic injector must
  # be deterministic end to end.
  diff "${WORK}/prob_a.json" "${WORK}/out.json" || {
    echo "FAIL: probabilistic run not reproducible (seed ${seed})" >&2
    exit 1
  }
done

# The sweep must actually have bitten: at least one I/O failure and one
# allocation failure, and at least one failed run exercised resume.
[[ "${io_fail}" -ge 1 ]] || { echo "FAIL: no file fault landed" >&2; exit 1; }
[[ "${alloc_fail}" -ge 1 ]] || { echo "FAIL: no alloc fault landed" >&2; exit 1; }
[[ "${resumed}" -ge 1 ]] || { echo "FAIL: resume path never exercised" >&2; exit 1; }

echo "chaos sweep green: ${runs} runs (${absorbed} absorbed," \
     "${io_fail} io-failed, ${alloc_fail} alloc-failed, ${resumed} resumed)"
