// libFuzzer/replay target: the snapshot input frontier (see fuzz_one.hpp).
#include "fuzz_one.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return ovo::fuzz::one_snapshot(data, size);
}
