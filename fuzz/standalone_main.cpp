// Standalone driver for the fuzz targets when libFuzzer is unavailable
// (the GCC toolchain): links against the same LLVMFuzzerTestOneInput the
// Clang build fuzzes, and drives it two ways —
//
//   fuzz_foo FILE...            replay corpus files (regression mode)
//   fuzz_foo --rand N --seed S  feed N deterministically generated
//                               pseudo-random inputs (smoke mode)
//
// Random inputs are produced by a self-contained xorshift generator so a
// (N, seed) pair replays the identical byte sequences on every machine —
// a failure report is reproducible from its command line alone.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::uint64_t xorshift(std::uint64_t* s) {
  std::uint64_t x = *s;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return *s = x;
}

int replay_file(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open '%s'\n", path);
    return 1;
  }
  std::vector<std::uint8_t> data;
  std::uint8_t buf[1 << 16];
  std::size_t r;
  while ((r = std::fread(buf, 1, sizeof(buf), f)) > 0)
    data.insert(data.end(), buf, buf + r);
  std::fclose(f);
  LLVMFuzzerTestOneInput(data.data(), data.size());
  std::printf("ok %s (%zu bytes)\n", path, data.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t rand_n = 0;
  std::uint64_t seed = 1;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rand") == 0 && i + 1 < argc) {
      rand_n = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [FILE...] [--rand N --seed S]\n", argv[0]);
      return 0;
    } else {
      files.push_back(argv[i]);
    }
  }
  for (const char* path : files)
    if (replay_file(path) != 0) return 1;
  if (rand_n > 0) {
    std::uint64_t s = seed ? seed : 1;
    std::vector<std::uint8_t> data;
    for (std::uint64_t i = 0; i < rand_n; ++i) {
      data.resize(xorshift(&s) % 4096);
      // Bias toward printable bytes so the text parsers get past their
      // first character more often than raw noise would manage.
      for (std::uint8_t& b : data) {
        const std::uint64_t v = xorshift(&s);
        b = (v & 1) != 0 ? static_cast<std::uint8_t>(0x20 + (v >> 1) % 0x5F)
                         : static_cast<std::uint8_t>(v >> 1);
      }
      LLVMFuzzerTestOneInput(data.data(), data.size());
    }
    std::printf("ok %llu random inputs (seed %llu)\n",
                static_cast<unsigned long long>(rand_n),
                static_cast<unsigned long long>(seed));
  }
  if (files.empty() && rand_n == 0)
    std::fprintf(stderr, "%s: nothing to do (pass FILE... or --rand N)\n",
                 argv[0]);
  return 0;
}
