#pragma once
// Shared one-input harness bodies for the fuzzed input frontier.  Each
// function feeds arbitrary bytes to one untrusted-input decoder and
// absorbs exactly the *typed* rejection paths (util::CheckError for the
// text parsers, rt::CheckpointError for the binary decoders).  Anything
// else — a crash, a sanitizer report, an unexpected exception type
// terminating the process — is a finding.
//
// The same bodies back three harnesses:
//   * the libFuzzer targets in fuzz/fuzz_*.cpp (Clang, -fsanitize=fuzzer)
//   * the standalone replay driver (GCC; file replay + --rand generation)
//   * the tier-1 corpus regression test (tests/corpus_test.cpp), which
//     replays tests/data/corpus/ through the identical code path.

#include <cstddef>
#include <cstdint>
#include <string>

#include "bdd/serialize.hpp"
#include "core/fs_checkpoint.hpp"
#include "rt/checkpoint.hpp"
#include "tt/blif.hpp"
#include "tt/expr.hpp"
#include "tt/pla.hpp"
#include "util/check.hpp"
#include "zdd/serialize.hpp"

namespace ovo::fuzz {

inline std::string as_text(const std::uint8_t* data, std::size_t len) {
  return std::string(reinterpret_cast<const char*>(data), len);
}

inline int one_blif(const std::uint8_t* data, std::size_t len) {
  try {
    tt::parse_blif(as_text(data, len));
  } catch (const util::CheckError&) {
  }
  return 0;
}

inline int one_pla(const std::uint8_t* data, std::size_t len) {
  try {
    tt::parse_pla(as_text(data, len));
  } catch (const util::CheckError&) {
  }
  return 0;
}

inline int one_expr(const std::uint8_t* data, std::size_t len) {
  try {
    tt::parse_expr(as_text(data, len));
  } catch (const util::CheckError&) {
  }
  return 0;
}

/// The checkpoint decode stack: container framing (magic / version /
/// length / CRC) and, when the frame carries the FS* snapshot version,
/// the full semantic payload validation of core::decode_snapshot.
inline int one_snapshot(const std::uint8_t* data, std::size_t len) {
  try {
    const rt::CheckpointData d =
        rt::parse_checkpoint(data, len, 0, ~std::uint32_t{0});
    if (d.version <= core::kFsSnapshotVersion)
      core::decode_snapshot(d.payload.data(), d.payload.size());
  } catch (const rt::CheckpointError&) {
  }
  return 0;
}

/// The diagram loaders, dispatched the way a CLI would: binary images by
/// their leading tag byte, anything else through the text parsers.
inline int one_diagram(const std::uint8_t* data, std::size_t len) {
  try {
    if (len > 0 && data[0] == 'B') {
      bdd::load_bdd_binary(data, len);
    } else if (len > 0 && data[0] == 'Z') {
      zdd::load_zdd_binary(data, len);
    } else {
      const std::string text = as_text(data, len);
      if (text.rfind("ovo-zdd", 0) == 0)
        zdd::load_zdd(text);
      else
        bdd::load_bdd(text);
    }
  } catch (const util::CheckError&) {
  } catch (const rt::CheckpointError&) {
  }
  return 0;
}

}  // namespace ovo::fuzz
