// libFuzzer/replay target: the expr input frontier (see fuzz_one.hpp).
#include "fuzz_one.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return ovo::fuzz::one_expr(data, size);
}
