// A complete EDA-style flow on a multi-output netlist: read a BLIF
// design, build its shared BDD, and compare every ordering method in the
// library — exact FS (shared), branch and bound, sifting, exact windows,
// simulated annealing — the workflow the paper's introduction describes
// for judging heuristics with theoretically sound methods.

#include <cinttypes>
#include <cstdio>
#include <numeric>

#include "core/minimize.hpp"
#include "core/multi_output.hpp"
#include "reorder/annealing.hpp"
#include "reorder/baselines.hpp"
#include "reorder/branch_and_bound.hpp"
#include "reorder/exact_window.hpp"
#include "tt/blif.hpp"
#include "util/rng.hpp"

namespace {

// A 4-bit ripple-carry adder netlist (9 inputs, 5 outputs) in BLIF.
const char* kAdderBlif = R"(.model rca4
.inputs a0 a1 a2 a3 b0 b1 b2 b3 cin
.outputs s0 s1 s2 s3 cout
.names a0 b0 x0
01 1
10 1
.names x0 cin s0
01 1
10 1
.names a0 b0 g0
11 1
.names x0 cin p0
11 1
.names g0 p0 c1
1- 1
-1 1
.names a1 b1 x1
01 1
10 1
.names x1 c1 s1
01 1
10 1
.names a1 b1 g1
11 1
.names x1 c1 p1
11 1
.names g1 p1 c2
1- 1
-1 1
.names a2 b2 x2
01 1
10 1
.names x2 c2 s2
01 1
10 1
.names a2 b2 g2
11 1
.names x2 c2 p2
11 1
.names g2 p2 c3
1- 1
-1 1
.names a3 b3 x3
01 1
10 1
.names x3 c3 s3
01 1
10 1
.names a3 b3 g3
11 1
.names x3 c3 p3
11 1
.names g3 p3 cout
1- 1
-1 1
.end
)";

}  // namespace

int main() {
  using namespace ovo;
  const tt::BlifModel design = tt::parse_blif(kAdderBlif);
  std::printf("design: %s — %zu inputs, %zu outputs\n", design.name.c_str(),
              design.inputs.size(), design.outputs.size());

  const std::vector<tt::TruthTable> outputs = design.output_tables();
  const int n = static_cast<int>(design.inputs.size());
  std::vector<int> id(static_cast<std::size_t>(n));
  std::iota(id.begin(), id.end(), 0);

  // Identity (declaration) order: blocked operands — bad for adders.
  const std::uint64_t identity = core::shared_size_for_order(outputs, id);
  std::printf("\nshared BDD, declaration order : %" PRIu64
              " internal nodes\n",
              identity);

  // Exact shared optimum (the headline algorithm, multi-output form).
  const auto exact = core::fs_minimize_shared(outputs);
  std::printf("shared BDD, exact optimum     : %" PRIu64
              " internal nodes, order:",
              exact.min_internal_nodes);
  for (const int v : exact.order_root_first)
    std::printf(" %s", design.inputs[static_cast<std::size_t>(v)].c_str());
  std::printf("\n  (%" PRIu64 " table cells processed — Theorem 5's "
              "O*(3^n) DP)\n",
              exact.ops.table_cells);

  // Single-output engines on the carry-out for comparison.
  const tt::TruthTable& cout_table = outputs.back();
  const auto fs = core::fs_minimize(cout_table);
  const auto bnb = reorder::branch_and_bound_minimize(cout_table);
  std::printf("\ncarry-out alone: FS %" PRIu64 " nodes; branch-and-bound %"
              PRIu64 " nodes (%" PRIu64 " states expanded)\n",
              fs.min_internal_nodes, bnb.internal_nodes,
              bnb.states_expanded);

  // Heuristics on the carry-out.
  util::Xoshiro256 rng(41);
  const auto sifted = reorder::sift(cout_table, id);
  const auto windows = reorder::exact_window(cout_table, id, 4);
  const auto annealed = reorder::simulated_annealing(
      cout_table, id, reorder::AnnealOptions{}, rng);
  std::printf("heuristics on carry-out: sifting %" PRIu64
              ", exact-window(4) %" PRIu64 ", annealing %" PRIu64
              " (optimum %" PRIu64 ")\n",
              sifted.internal_nodes, windows.internal_nodes,
              annealed.internal_nodes, fs.min_internal_nodes);

  const bool ok = exact.min_internal_nodes <= identity &&
                  fs.min_internal_nodes == bnb.internal_nodes;
  std::printf("\n%s\n", ok ? "flow complete" : "INCONSISTENT RESULTS");
  return ok ? 0 : 1;
}
