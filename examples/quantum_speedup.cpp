// The paper's quantum algorithm, end to end (simulated): run
// OptOBDD(k, alpha) with both minimum-finder backends on a structured
// function, print the quantum query ledger next to the classical FS cost,
// and show the analytic large-n advantage (Theorems 10 and 13).

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "core/minimize.hpp"
#include "quantum/analysis.hpp"
#include "quantum/opt_obdd.hpp"
#include "quantum/params.hpp"
#include "tt/function_zoo.hpp"

int main() {
  using namespace ovo;
  const tt::TruthTable f = tt::hidden_weighted_bit(9);
  const int n = f.num_vars();

  std::printf("function: hidden-weighted-bit on %d variables\n\n", n);

  // Classical exact baseline.
  const core::MinimizeResult fs = core::fs_minimize(f);
  std::printf("FS (classical exact): %" PRIu64 " internal nodes, %" PRIu64
              " table cells processed\n",
              fs.min_internal_nodes, fs.ops.table_cells);

  // Simulated quantum run, accounting backend.
  quantum::AccountingMinimumFinder acc(static_cast<double>(n));
  quantum::OptObddOptions opt;
  opt.alphas = {0.27};
  opt.finder = &acc;
  const quantum::OptObddResult qa = quantum::opt_obdd_minimize(f, opt);
  std::printf("\nOptOBDD (accounting finder):\n");
  std::printf("  minimum found       : %" PRIu64 " internal nodes (%s)\n",
              qa.min_internal_nodes,
              qa.min_internal_nodes == fs.min_internal_nodes ? "optimal"
                                                             : "SUBOPTIMAL");
  std::printf("  quantum queries     : %.0f across %d min-finding calls\n",
              qa.quantum.quantum_queries, qa.quantum.min_find_calls);
  std::printf("  quantum-charged work: %.3g cells vs %.3g classical "
              "simulation cells\n",
              qa.quantum.quantum_charged_cells,
              static_cast<double>(qa.classical_ops.table_cells));

  // Simulated quantum run, amplitude-level Dürr–Høyer backend.
  quantum::GroverMinimumFinder grover(4, 2026);
  opt.finder = &grover;
  const quantum::OptObddResult qg = quantum::opt_obdd_minimize(f, opt);
  std::printf("\nOptOBDD (statevector Dürr–Høyer finder):\n");
  std::printf("  minimum found       : %" PRIu64 " internal nodes (%s)\n",
              qg.min_internal_nodes,
              qg.min_internal_nodes == fs.min_internal_nodes ? "optimal"
                                                             : "suboptimal");
  std::printf("  real oracle queries : %.0f, failures: %d\n",
              qg.quantum.quantum_queries, qg.quantum.min_find_failures);

  // Where the asymptotics take over: analytic curves.
  std::printf("\nanalytic crossover (Theorem 10, k = 6 paper alphas):\n");
  const quantum::ChainSolution k6 = quantum::solve_alphas(6, 3.0);
  for (const int big_n : {20, 30, 40, 50}) {
    const auto bounds = quantum::realize_boundaries(k6.alphas, big_n);
    const double q =
        quantum::opt_obdd_predicted_cells(big_n, bounds).total;
    const double c = quantum::fs_total_cells(big_n);
    std::printf("  n = %2d: FS 2^%.1f cells, quantum 2^%.1f  (%.1fx "
                "advantage)\n",
                big_n, std::log2(c), std::log2(q), c / q);
  }
  std::printf("\npaper constants: gamma_6 = %.5f, tower fixpoint = %.5f\n",
              k6.gamma, quantum::composition_tower(6, 10).back().gamma);
  return qa.min_internal_nodes == fs.min_internal_nodes ? 0 : 1;
}
