// Combinatorial enumeration with ZDDs (the paper's second diagram kind,
// Remark 2 / [Min93, Knu09]): build the family of all independent sets of
// a cycle graph C_n as a ZDD, count and enumerate them, and show how much
// the exact optimal ordering and the ZDD representation save.

#include <cinttypes>
#include <cstdio>

#include "bdd/manager.hpp"
#include "core/minimize.hpp"
#include "tt/truth_table.hpp"
#include "zdd/algorithms.hpp"
#include "zdd/manager.hpp"

namespace {

// Independent sets of the cycle 0-1-...-(n-1)-0: no two adjacent vertices.
ovo::tt::TruthTable independent_sets_of_cycle(int n) {
  return ovo::tt::TruthTable::tabulate(n, [n](std::uint64_t a) {
    for (int i = 0; i < n; ++i) {
      const int j = (i + 1) % n;
      if (((a >> i) & 1u) && ((a >> j) & 1u)) return false;
    }
    return true;
  });
}

// Lucas numbers: |independent sets of C_n| = L(n).
std::uint64_t lucas(int n) {
  std::uint64_t a = 2, b = 1;  // L0, L1
  for (int i = 0; i < n; ++i) {
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  return a;
}

}  // namespace

int main() {
  using namespace ovo;
  const int n = 12;
  const tt::TruthTable family = independent_sets_of_cycle(n);

  // ZDD under the natural ordering.
  zdd::Manager zm(n);
  const zdd::NodeId z = zm.from_truth_table(family);
  std::printf("independent sets of C_%d: %" PRIu64 " (Lucas number L(%d) = "
              "%" PRIu64 ")\n",
              n, zm.count(z), n, lucas(n));
  std::printf("ZDD size (natural order): %" PRIu64 " internal nodes\n",
              zm.size(z));

  // Exact optimal ZDD ordering via the FS adaptation.
  const core::MinimizeResult zopt =
      core::fs_minimize(family, core::DiagramKind::kZdd);
  std::printf("ZDD size (optimal order): %" PRIu64 " internal nodes, order:",
              zopt.min_internal_nodes);
  for (const int v : zopt.order_root_first) std::printf(" v%d", v);
  std::printf("\n");

  // Compare against the BDD of the same family.
  const core::MinimizeResult bopt = core::fs_minimize(family);
  std::printf("BDD size (optimal order): %" PRIu64 " internal nodes\n",
              bopt.min_internal_nodes);

  // Family algebra: independent sets that contain vertex 0 but not vertex 6,
  // computed with Minato's subset operators.
  zdd::Manager zm2(n, zopt.order_root_first);
  const zdd::NodeId zo = zm2.from_truth_table(family);
  const zdd::NodeId with0 = zm2.subset1(zo, 0);  // v0 factored out
  const zdd::NodeId sel = zm2.subset0(with0, 6);
  std::printf("independent sets containing v0 but not v6: %" PRIu64
              " (listed with v0 factored out)\n",
              zm2.count(sel));

  // Enumerate a few smallest members (as vertex masks).
  const auto sets = zm2.enumerate(sel);
  std::printf("first members:");
  for (std::size_t i = 0; i < sets.size() && i < 5; ++i)
    std::printf(" {%#llx}", static_cast<unsigned long long>(sets[i]));
  std::printf("\n");

  // Family algebra (Minato): MAXIMAL independent sets, and the maximum-
  // weight independent set via min_weight_set with negated weights.
  const zdd::NodeId maximal = zdd::maximal_sets(zm2, zo);
  std::printf("maximal independent sets: %" PRIu64 "\n",
              zm2.count(maximal));
  std::vector<double> neg_weight(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v)
    neg_weight[static_cast<std::size_t>(v)] = -(1.0 + (v % 3));  // 1..3
  const auto best = zdd::min_weight_set(zm2, zo, neg_weight);
  if (best.has_value()) {
    std::printf("maximum-weight independent set: weight %.0f, vertices {",
                -best->weight);
    util::for_each_bit(best->set, [](int v) { std::printf(" %d", v); });
    std::printf(" }\n");
  }

  return zm.count(z) == lucas(n) ? 0 : 1;
}
