// Formal verification workload (the paper's VLSI-design motivation):
// check that a gate-level adder implementation matches its behavioral
// specification via canonical OBDDs, then demonstrate counterexample
// extraction on a buggy variant — all under an *optimized* variable
// ordering, which is what keeps the diagrams small.

#include <cinttypes>
#include <cstdio>

#include "bdd/manager.hpp"
#include "core/minimize.hpp"
#include "tt/circuit.hpp"
#include "tt/truth_table.hpp"

int main() {
  using namespace ovo;
  constexpr int kBits = 4;  // 4-bit adder => 8 input variables
  const int n = 2 * kBits;

  // Implementation: gate-level ripple-carry carry-out.
  const tt::Circuit impl = tt::Circuit::ripple_carry_out(kBits);
  // Specification: behavioral description evaluated directly.
  const tt::TruthTable spec = tt::TruthTable::tabulate(n, [](std::uint64_t a) {
    const std::uint64_t u = a & 0xF;
    const std::uint64_t v = (a >> kBits) & 0xF;
    return ((u + v) >> kBits) & 1u;
  });

  // Find a good ordering for the spec, then build both sides in ONE
  // manager: canonicity makes equivalence a pointer comparison.
  const core::MinimizeResult order = core::fs_minimize(spec);
  std::printf("optimal order found, minimum OBDD has %" PRIu64
              " internal nodes\n",
              order.min_internal_nodes);
  bdd::Manager m(n, order.order_root_first);
  const bdd::NodeId spec_root = m.from_truth_table(spec);
  const bdd::NodeId impl_root = m.from_truth_table(impl.to_truth_table());
  std::printf("spec == impl: %s (root ids %u vs %u)\n",
              spec_root == impl_root ? "EQUIVALENT" : "DIFFERENT", spec_root,
              impl_root);

  // Bug injection: swap an AND for an OR inside a fresh ripple circuit.
  tt::Circuit buggy(n);
  int carry = -1;
  for (int i = 0; i < kBits; ++i) {
    const int u = i;
    const int v = kBits + i;
    if (carry < 0) {
      carry = buggy.add_gate(tt::GateOp::kOr, u, v);  // BUG: should be AND
    } else {
      const int uv = buggy.add_gate(tt::GateOp::kAnd, u, v);
      const int uxv = buggy.add_gate(tt::GateOp::kXor, u, v);
      const int prop = buggy.add_gate(tt::GateOp::kAnd, uxv, carry);
      carry = buggy.add_gate(tt::GateOp::kOr, uv, prop);
    }
  }
  buggy.set_output(carry);

  const bdd::NodeId buggy_root = m.from_truth_table(buggy.to_truth_table());
  std::printf("spec == buggy impl: %s\n",
              spec_root == buggy_root ? "EQUIVALENT" : "DIFFERENT");

  // Counterexample: any satisfying assignment of spec XOR buggy.
  const bdd::NodeId diff = m.apply_xor(spec_root, buggy_root);
  std::uint64_t cex = 0;
  if (m.find_sat_assignment(diff, &cex)) {
    const std::uint64_t u = cex & 0xF;
    const std::uint64_t v = (cex >> kBits) & 0xF;
    std::printf("counterexample: u=%" PRIu64 " v=%" PRIu64
                "  spec carry=%d  buggy carry=%d\n",
                u, v, static_cast<int>(((u + v) >> kBits) & 1u),
                m.eval(buggy_root, cex) ? 1 : 0);
  }
  std::printf("diagrams share one node pool: %zu nodes total\n",
              m.pool_size());
  return spec_root == impl_root && spec_root != buggy_root ? 0 : 1;
}
