// Quickstart: parse a Boolean formula, find its optimal variable ordering
// with the exact Friedman–Supowit algorithm, and inspect the resulting
// minimum OBDD.
//
//   $ ./quickstart                        # uses the paper's Fig. 1 formula
//   $ ./quickstart "x1 & (x2 | !x3)"      # or any formula (1-based vars)

#include <cinttypes>
#include <cstdio>
#include <string>

#include "bdd/manager.hpp"
#include "core/minimize.hpp"
#include "tt/expr.hpp"

int main(int argc, char** argv) {
  using namespace ovo;
  const std::string formula =
      argc > 1 ? argv[1] : "x1 & x2 | x3 & x4 | x5 & x6";

  // 1. Parse and tabulate (Corollary 2: any poly-evaluable representation
  //    can be turned into a truth table in O*(2^n)).
  const tt::ExprPtr expr = tt::parse_expr(formula);
  const int n = tt::expr_num_vars(*expr);
  if (n == 0 || n > 16) {
    std::fprintf(stderr, "need 1..16 variables, got %d\n", n);
    return 1;
  }
  const tt::TruthTable f = tt::expr_to_truth_table(*expr, n);
  std::printf("formula : %s\n", formula.c_str());
  std::printf("vars    : %d   satisfying assignments: %" PRIu64 "/%" PRIu64
              "\n",
              n, f.count_ones(), f.size());

  // 2. Exact minimization (Theorem 5: O*(3^n) time).
  const core::MinimizeResult r = core::fs_minimize(f);
  std::printf("minimum OBDD: %" PRIu64 " internal nodes (+2 terminals)\n",
              r.min_internal_nodes);
  std::printf("optimal read order (root first):");
  for (const int v : r.order_root_first) std::printf(" x%d", v + 1);
  std::printf("\n");

  // 3. Build the diagram under the optimal order and under the identity
  //    order to see the difference.
  bdd::Manager best(n, r.order_root_first);
  const bdd::NodeId root = best.from_truth_table(f);
  bdd::Manager ident(n);
  const std::uint64_t ident_size = ident.size(ident.from_truth_table(f));
  std::printf("identity-order OBDD: %" PRIu64 " internal nodes (%.2fx of "
              "optimal)\n",
              ident_size,
              r.min_internal_nodes == 0
                  ? 1.0
                  : static_cast<double>(ident_size) /
                        static_cast<double>(r.min_internal_nodes));

  // 4. Export Graphviz for the minimum diagram.
  std::printf("\nGraphviz of the minimum OBDD:\n%s",
              best.to_dot(root, "minimum").c_str());
  return 0;
}
